lib/experiments/eq_sweep.ml: Array Econ Hashtbl Policy Scenario Subsidization
