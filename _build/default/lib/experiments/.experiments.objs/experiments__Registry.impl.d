lib/experiments/registry.ml: Ablation_exp Capacity_exp Common Duopoly_exp Dynamics_exp Fig4 Fig5 Fig7 Fig8_11 List Longrun_exp Printf Robustness_exp String Surplus_exp Verify_exp
