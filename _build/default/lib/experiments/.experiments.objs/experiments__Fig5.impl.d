lib/experiments/fig5.ml: Array Common Econ List One_sided Report Scenario Subsidization System
