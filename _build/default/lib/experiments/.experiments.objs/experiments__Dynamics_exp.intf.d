lib/experiments/dynamics_exp.mli: Common
