lib/experiments/fig7.ml: Array Common Eq_sweep Float List One_sided Policy Printf Report Scenario Subsidization
