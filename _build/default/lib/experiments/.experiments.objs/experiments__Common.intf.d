lib/experiments/common.mli: Report Subsidization
