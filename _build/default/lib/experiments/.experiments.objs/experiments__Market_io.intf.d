lib/experiments/market_io.mli: Econ
