lib/experiments/fig8_11.ml: Array Common Econ Eq_sweep Float List Nash Policy Printf Report Scenario Subsidization System
