lib/experiments/capacity_exp.mli: Common
