lib/experiments/dynamics_exp.ml: Common Dynamics Gametheory List Nash Numerics Printf Report Scenario Subsidization Subsidy_game
