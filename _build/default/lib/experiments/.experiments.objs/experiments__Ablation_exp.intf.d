lib/experiments/ablation_exp.mli: Common
