lib/experiments/longrun_exp.ml: Array Common Longrun Printf Report Scenario Subsidization
