lib/experiments/market_io.ml: Array Econ List Option Printf Report String
