lib/experiments/surplus_exp.ml: Array Common Float Nash Numerics Report Revenue Scenario Subsidization Subsidy_game Welfare
