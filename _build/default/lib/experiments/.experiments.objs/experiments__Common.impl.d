lib/experiments/common.ml: Filename Format List Printf Report Subsidization
