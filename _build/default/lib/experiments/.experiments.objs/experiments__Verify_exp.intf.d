lib/experiments/verify_exp.mli: Common
