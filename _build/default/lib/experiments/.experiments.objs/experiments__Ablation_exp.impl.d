lib/experiments/ablation_exp.ml: Array Common Float Gametheory List Nash Numerics Printf Report Scenario Subsidization Subsidy_game System
