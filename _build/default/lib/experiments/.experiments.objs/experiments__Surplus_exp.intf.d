lib/experiments/surplus_exp.mli: Common
