lib/experiments/eq_sweep.mli: Subsidization
