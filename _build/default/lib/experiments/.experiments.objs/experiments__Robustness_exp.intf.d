lib/experiments/robustness_exp.mli: Common
