lib/experiments/fig8_11.mli: Common Report
