lib/experiments/fig4.ml: Array Common One_sided Printf Report Scenario Subsidization System
