lib/experiments/duopoly_exp.ml: Common Duopoly Printf Report Scenario Subsidization
