open Subsidization

let run () : Common.outcome =
  let sys = Scenario.fig7_11_system () in
  let game = Subsidy_game.make sys ~price:0.8 ~cap:1.0 in
  let static = Nash.solve game in
  let report = Dynamics.compare game in
  let br = report.Dynamics.best_response in
  let flow = report.Dynamics.gradient in

  (* trace table: per-sweep displacement of the discrete process *)
  let trace_table = Report.Table.make ~columns:[ "sweep"; "sup-norm move" ] in
  List.iter
    (fun (s : Gametheory.Tatonnement.step) ->
      if s.Gametheory.Tatonnement.index > 0 then
        Report.Table.add_row trace_table
          [
            string_of_int s.Gametheory.Tatonnement.index;
            Printf.sprintf "%.3e" s.Gametheory.Tatonnement.move;
          ])
    br.Gametheory.Tatonnement.steps;

  let summary = Report.Table.make ~columns:[ "process"; "settles"; "distance to static Nash" ] in
  let br_final = Gametheory.Tatonnement.final br in
  Report.Table.add_row summary
    [
      "best-response tatonnement";
      string_of_bool br.Gametheory.Tatonnement.converged;
      Printf.sprintf "%.2e" (Numerics.Vec.dist_inf br_final static.Nash.subsidies);
    ];
  Report.Table.add_row summary
    [
      "projected gradient flow";
      string_of_bool flow.Gametheory.Gradient_dynamics.stationary;
      Printf.sprintf "%.2e"
        (Numerics.Vec.dist_inf flow.Gametheory.Gradient_dynamics.final
           static.Nash.subsidies);
    ];

  let contraction = Gametheory.Tatonnement.contraction_estimate br in
  let vi_alt = Nash.solve_vi ~tol:1e-9 game in
  let checks =
    [
      Common.check ~name:"dynamics.br-converges" br.Gametheory.Tatonnement.converged
        "discrete tatonnement settles";
      Common.check ~name:"dynamics.flow-stationary"
        flow.Gametheory.Gradient_dynamics.stationary
        "the gradient flow reaches a VI-stationary point";
      Common.check ~name:"dynamics.agree" report.Dynamics.agree
        "both processes reach the same profile";
      Common.check ~name:"dynamics.match-static"
        (Numerics.Vec.dist_inf br_final static.Nash.subsidies < 1e-6
        && Numerics.Vec.dist_inf flow.Gametheory.Gradient_dynamics.final
             static.Nash.subsidies
           < 1e-4)
        "dynamics agree with the static Nash solver";
      Common.check ~name:"dynamics.contraction"
        (match contraction with Some r -> r < 1. | None -> true)
        (Printf.sprintf "empirical contraction factor %s"
           (match contraction with Some r -> Printf.sprintf "%.3f" r | None -> "n/a"));
      Common.check ~name:"dynamics.vi-crosscheck"
        (vi_alt.Nash.converged
        && Numerics.Vec.dist_inf vi_alt.Nash.subsidies static.Nash.subsidies < 1e-5)
        "the extragradient VI solver finds the same equilibrium";
    ]
  in
  {
    Common.id = "dynamics";
    title = "Adjustment dynamics: tatonnement, gradient flow and VI cross-check";
    tables = [ ("summary", summary); ("br_trace", trace_table) ];
    plots = [];
    shape_checks = checks;
  }

let experiment =
  {
    Common.id = "dynamics";
    title = "Off-equilibrium adjustment dynamics (extension)";
    paper_ref = "Section 4.2 (dynamics of subsidies)";
    run;
  }
