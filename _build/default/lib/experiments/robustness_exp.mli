(** Monte-Carlo robustness: the paper's qualitative claims, re-checked
    on randomized CP populations instead of the styled 8-type market.
    Reports the fraction of sampled markets on which each property
    holds. *)

val experiment : Common.t
