(** The regulator's problem (Section 5's decision chain, closed).

    The paper describes the hierarchy: regulator sets the policy [q],
    the ISP responds with a price [p(q)], the CPs respond with
    subsidies [s(p, q)]. This module closes the loop and lets a welfare-
    maximizing regulator choose [q] — optionally together with a price
    cap, the instrument the paper recommends when the access market is
    not competitive. *)

type regime = {
  cap : float;  (** chosen policy [q] *)
  price_cap : float option;  (** the price ceiling, when regulated *)
  price : float;  (** the ISP's resulting price *)
  revenue : float;
  welfare : float;
  utilization : float;
}

val isp_price : ?p_max:float -> System.t -> cap:float -> price_cap:float option -> float
(** The ISP's revenue-maximizing price under an optional ceiling. *)

val evaluate :
  ?p_max:float -> System.t -> cap:float -> price_cap:float option -> regime
(** The market outcome of a policy pair. *)

val optimal_policy :
  ?p_max:float -> ?caps:float array -> System.t -> price_cap:float option -> regime
(** Welfare-maximizing [q] over a grid of candidate caps (default the
    paper's 5 levels), anticipating the ISP's pricing. *)

val optimal_policy_with_price_cap :
  ?p_max:float ->
  ?caps:float array ->
  ?price_caps:float array ->
  System.t ->
  regime
(** Joint choice of subsidy cap and price ceiling — the paper's
    "deregulate subsidization, regulate the price" recommendation
    emerges when the chosen regime pairs a large [q] with a binding
    ceiling. *)
