(** The paper's evaluation scenarios, plus randomized workload
    generators for tests and benchmarks.

    Section 3.2 (Figures 4-5): 9 CP types with
    [(alpha_i, beta_i) in {1,3,5}^2], [mu = 1], [Phi = theta/mu],
    [m_i = e^(-alpha_i t)], [lambda_i = e^(-beta_i phi)].

    Section 5.2 (Figures 7-11): 8 CP types with
    [alpha, beta in {2,5}] and [v in {0.5, 1}], same physical model,
    policy levels [q in {0, 0.5, 1, 1.5, 2}] and prices [p in [0, 2]]. *)

val fig45_cps : unit -> Econ.Cp.t array
(** Nine CPs, named ["a1b1"] ... ["a5b5"]; Section 3 does not use CP
    values, so [v_i = 1]. *)

val fig45_system : unit -> System.t

val fig7_11_cps : unit -> Econ.Cp.t array
(** Eight CPs, named ["a2b2v0.5"] ... ["a5b5v1"], ordered value-major
    then alpha then beta to match the paper's panel layout. *)

val fig7_11_system : unit -> System.t

val q_levels : unit -> float array
(** [{0, 0.5, 1.0, 1.5, 2.0}]. *)

val price_grid : ?points:int -> ?p_max:float -> unit -> float array
(** The x-axis of every figure: [points] (default 41) prices from 0 to
    [p_max] (default 2). The 0 endpoint is nudged to [1e-9] so that
    elasticity-based diagnostics stay defined. *)

val random_cp : ?value_hi:float -> Numerics.Rng.t -> Econ.Cp.t
(** A CP with [alpha, beta ~ U[0.5, 6]], [v ~ U[0, value_hi]]
    (default 1.5), exponential families: the randomized workload used by
    property tests. *)

val random_system :
  ?n:int -> ?capacity:float -> Numerics.Rng.t -> System.t
(** [n] defaults to a draw in [2..8]; [capacity] to a draw in
    [0.5, 3]. *)
