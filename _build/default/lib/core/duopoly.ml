open Numerics

type t = {
  cps : Econ.Cp.t array;
  utilization : Econ.Utilization.t;
  capacity_a : float;
  capacity_b : float;
  eta : float;
  cap : float;
  mutable subsidy_cache : Vec.t option; (* warm start for the CP game *)
}

type market = {
  prices : float * float;
  subsidies : Vec.t;
  utilizations : float * float;
  populations : Vec.t * Vec.t;
  throughputs : Vec.t;
  revenues : float * float;
  welfare : float;
}

let make ?(utilization = Econ.Utilization.linear) ?(eta = 4.) ~cps ~capacity_a
    ~capacity_b ~cap () =
  if Array.length cps = 0 then invalid_arg "Duopoly.make: no content providers";
  if capacity_a <= 0. || capacity_b <= 0. then
    invalid_arg "Duopoly.make: capacities must be positive";
  if eta <= 0. then invalid_arg "Duopoly.make: eta must be positive";
  if cap < 0. then invalid_arg "Duopoly.make: cap must be non-negative";
  { cps = Array.copy cps; utilization; capacity_a; capacity_b; eta; cap; subsidy_cache = None }

let cap d = d.cap

let split_populations d ~prices ~subsidies =
  let pa, pb = prices in
  let n = Array.length d.cps in
  if Vec.dim subsidies <> n then invalid_arg "Duopoly: subsidy dimension mismatch";
  let ma = Vec.zeros n and mb = Vec.zeros n in
  Array.iteri
    (fun i cp ->
      let ta = pa -. subsidies.(i) and tb = pb -. subsidies.(i) in
      let total = Econ.Cp.population cp (Float.min ta tb) in
      (* logit with the common subsidy cancelling out of the difference *)
      let wa = exp (-.d.eta *. ta) and wb = exp (-.d.eta *. tb) in
      let share_a = wa /. (wa +. wb) in
      ma.(i) <- total *. share_a;
      mb.(i) <- total *. (1. -. share_a))
    d.cps;
  (ma, mb)

let systems d =
  let sys_a = System.make ~utilization:d.utilization ~cps:d.cps ~capacity:d.capacity_a () in
  let sys_b = System.make ~utilization:d.utilization ~cps:d.cps ~capacity:d.capacity_b () in
  (sys_a, sys_b)

let states d ~prices ~subsidies =
  let ma, mb = split_populations d ~prices ~subsidies in
  let sys_a, sys_b = systems d in
  let st_a = System.solve_fixed_populations sys_a ~populations:ma in
  let st_b = System.solve_fixed_populations sys_b ~populations:mb in
  (st_a, st_b)

let total_throughputs (st_a : System.state) (st_b : System.state) =
  Vec.add st_a.System.throughputs st_b.System.throughputs

let cp_game d ~prices =
  let n = Array.length d.cps in
  let box = Gametheory.Box.uniform ~dim:n ~lo:0. ~hi:d.cap in
  let payoff i s =
    let st_a, st_b = states d ~prices ~subsidies:s in
    let theta = total_throughputs st_a st_b in
    (d.cps.(i).Econ.Cp.value -. s.(i)) *. theta.(i)
  in
  Gametheory.Best_response.make ~respond_points:17 ~box ~payoff ()

let solve_subsidies d ~prices =
  let n = Array.length d.cps in
  if d.cap <= 0. then Vec.zeros n
  else begin
    let game = cp_game d ~prices in
    let x0 =
      match d.subsidy_cache with
      | Some s when Vec.dim s = n -> Vec.clamp ~lo:0. ~hi:d.cap s
      | Some _ | None -> Vec.zeros n
    in
    let out = Gametheory.Best_response.solve ~tol:1e-7 ~max_sweeps:100 game ~x0 in
    d.subsidy_cache <- Some out.Gametheory.Best_response.profile;
    out.Gametheory.Best_response.profile
  end

let market_with_subsidies d ~prices ~subsidies =
  let pa, pb = prices in
  let st_a, st_b = states d ~prices ~subsidies in
  let throughputs = total_throughputs st_a st_b in
  let welfare = ref 0. in
  Array.iteri (fun i cp -> welfare := !welfare +. (cp.Econ.Cp.value *. throughputs.(i))) d.cps;
  {
    prices;
    subsidies;
    utilizations = (st_a.System.phi, st_b.System.phi);
    populations = (st_a.System.populations, st_b.System.populations);
    throughputs;
    revenues = (pa *. st_a.System.aggregate, pb *. st_b.System.aggregate);
    welfare = !welfare;
  }

let market_at d ~prices =
  let subsidies = solve_subsidies d ~prices in
  market_with_subsidies d ~prices ~subsidies

let revenue_of d ~prices which =
  let m = market_at d ~prices in
  match which with `A -> fst m.revenues | `B -> snd m.revenues

let price_equilibrium ?(p_max = 2.5) ?(points = 13) ?(tol = 1e-4) ?(max_sweeps = 30) d =
  let box = Gametheory.Box.uniform ~dim:2 ~lo:0. ~hi:p_max in
  let payoff i (p : Vec.t) =
    revenue_of d ~prices:(p.(0), p.(1)) (if i = 0 then `A else `B)
  in
  (* no analytic price derivative: line-search responses *)
  let game = Gametheory.Best_response.make ~respond_points:points ~box ~payoff () in
  let out =
    Gametheory.Best_response.solve ~tol ~max_sweeps game
      ~x0:(Vec.make 2 (p_max /. 2.))
  in
  let p = out.Gametheory.Best_response.profile in
  market_at d ~prices:(p.(0), p.(1))

let monopoly_benchmark ?(p_max = 2.5) ?(points = 25) d =
  let revenue p =
    let m = market_at d ~prices:(p, p) in
    fst m.revenues +. snd m.revenues
  in
  let r = Optimize.grid_then_golden ~points ~tol:1e-4 revenue ~lo:0. ~hi:p_max in
  market_at d ~prices:(r.Optimize.x, r.Optimize.x)
