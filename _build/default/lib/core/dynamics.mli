(** Off-equilibrium adjustment dynamics of the subsidization game.

    The paper's equilibrium concept is static; this module provides the
    two standard adjustment processes whose rest points are the Nash
    equilibria, so the "dynamics of subsidies" (Section 4.2) can be
    simulated rather than assumed:

    - discrete best-response tatonnement (Gauss-Seidel or Jacobi),
      recorded as a trace;
    - continuous projected gradient flow [ds_i/dt = u_i(s)]. *)

type report = {
  best_response : Gametheory.Tatonnement.trace;
  gradient : Gametheory.Gradient_dynamics.result;
  agree : bool;
      (** both processes settle, at the same profile (sup-norm 1e-5) *)
}

val best_response_trace :
  ?scheme:Gametheory.Best_response.scheme ->
  ?damping:float ->
  ?max_sweeps:int ->
  Subsidy_game.t ->
  x0:Numerics.Vec.t ->
  Gametheory.Tatonnement.trace

val gradient_flow :
  ?horizon:float ->
  ?dt:float ->
  Subsidy_game.t ->
  x0:Numerics.Vec.t ->
  Gametheory.Gradient_dynamics.result
(** Defaults: [horizon = 600], [dt = 0.25] — the flow's time
    constant near equilibrium is large because marginal utilities are
    small there. *)

val compare : ?x0:Numerics.Vec.t -> Subsidy_game.t -> report
(** Run both processes from [x0] (default: zero subsidies) and check
    that they agree with each other. *)
