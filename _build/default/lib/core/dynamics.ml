open Numerics

type report = {
  best_response : Gametheory.Tatonnement.trace;
  gradient : Gametheory.Gradient_dynamics.result;
  agree : bool;
}

let best_response_trace ?scheme ?damping ?max_sweeps game ~x0 =
  Gametheory.Tatonnement.run ?scheme ?damping ?max_sweeps (Subsidy_game.to_game game) ~x0

let gradient_flow ?(horizon = 600.) ?(dt = 0.25) game ~x0 =
  Gametheory.Gradient_dynamics.flow
    ~marginal:(fun i s -> Subsidy_game.marginal_utility game ~subsidies:s i)
    ~box:(Subsidy_game.box game) ~horizon ~dt ~x0 ()

let compare ?x0 game =
  let x0 = match x0 with Some x -> x | None -> Vec.zeros (Subsidy_game.dim game) in
  let best_response = best_response_trace game ~x0 in
  let gradient = gradient_flow game ~x0 in
  let agree =
    best_response.Gametheory.Tatonnement.converged
    && gradient.Gametheory.Gradient_dynamics.stationary
    && Vec.dist_inf
         (Gametheory.Tatonnement.final best_response)
         gradient.Gametheory.Gradient_dynamics.final
       <= 1e-5
  in
  { best_response; gradient; agree }
