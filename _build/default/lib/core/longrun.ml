type params = {
  periods : int;
  unit_cost : float;
  reinvestment : float;
  depreciation : float;
}

let default_params =
  { periods = 30; unit_cost = 0.2; reinvestment = 0.5; depreciation = 0.05 }

type snapshot = {
  period : int;
  capacity : float;
  equilibrium : Nash.equilibrium;
  revenue : float;
  profit : float;
}

let validate { periods; unit_cost; reinvestment; depreciation } =
  if periods < 1 then invalid_arg "Longrun: periods must be >= 1";
  if unit_cost <= 0. then invalid_arg "Longrun: unit_cost must be positive";
  if reinvestment < 0. || reinvestment > 1. then
    invalid_arg "Longrun: reinvestment must lie in [0, 1]";
  if depreciation < 0. || depreciation >= 1. then
    invalid_arg "Longrun: depreciation must lie in [0, 1)"

let simulate ?(params = default_params) sys ~price ~cap =
  validate params;
  let warm = ref None in
  let snapshots = ref [] in
  let capacity = ref sys.System.capacity in
  for period = 0 to params.periods - 1 do
    let market = System.with_capacity sys !capacity in
    let game = Subsidy_game.make market ~price ~cap in
    let eq =
      Nash.solve
        ?x0:(Option.map (Numerics.Vec.clamp ~lo:0. ~hi:cap) !warm)
        game
    in
    warm := Some eq.Nash.subsidies;
    let revenue = price *. eq.Nash.state.System.aggregate in
    let profit = revenue -. (params.unit_cost *. !capacity) in
    snapshots := { period; capacity = !capacity; equilibrium = eq; revenue; profit } :: !snapshots;
    capacity :=
      (!capacity *. (1. -. params.depreciation))
      +. (params.reinvestment *. Float.max 0. profit /. params.unit_cost)
  done;
  Array.of_list (List.rev !snapshots)

let throughput_path snapshots ~cp =
  Array.map (fun s -> s.equilibrium.Nash.state.System.throughputs.(cp)) snapshots

let capacity_path snapshots = Array.map (fun s -> s.capacity) snapshots

let steady_state_capacity snapshots =
  let n = Array.length snapshots in
  if n < 2 then None
  else begin
    let last = snapshots.(n - 1).capacity and prev = snapshots.(n - 2).capacity in
    if Float.abs (last -. prev) <= 0.01 *. Float.max 1e-9 prev then Some last else None
  end
