lib/core/theorems.ml: Array Buffer Econ Float Format Grid List Nash Numerics One_sided Policy Printf Revenue Rng Scenario Sensitivity Subsidy_game System Vec Welfare
