lib/core/dynamics.ml: Gametheory Numerics Subsidy_game Vec
