lib/core/nash.mli: Gametheory Numerics Subsidy_game System
