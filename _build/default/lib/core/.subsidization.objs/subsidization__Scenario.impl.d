lib/core/scenario.ml: Array Econ Grid List Numerics Printf Rng System
