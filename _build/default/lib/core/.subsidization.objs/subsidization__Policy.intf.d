lib/core/policy.mli: Nash System
