lib/core/welfare.ml: Array Econ Float Nash Numerics Quadrature Sensitivity Subsidy_game System Vec
