lib/core/nash.ml: Array Diff Fixedpoint Float Gametheory List Mat Numerics Subsidy_game System Vec
