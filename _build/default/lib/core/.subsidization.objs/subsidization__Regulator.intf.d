lib/core/regulator.mli: System
