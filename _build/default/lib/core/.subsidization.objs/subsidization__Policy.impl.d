lib/core/policy.ml: Array Nash Numerics Option Revenue Subsidy_game System Welfare
