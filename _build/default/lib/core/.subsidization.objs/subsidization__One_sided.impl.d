lib/core/one_sided.ml: Array Econ Float Numerics Optimize Printf System Vec
