lib/core/capacity.ml: Array Numerics Policy System
