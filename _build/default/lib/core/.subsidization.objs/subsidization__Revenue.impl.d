lib/core/revenue.ml: Array Econ Nash Numerics Optimize Sensitivity Subsidy_game System Vec
