lib/core/theorems.mli: Format Nash Numerics Subsidy_game System
