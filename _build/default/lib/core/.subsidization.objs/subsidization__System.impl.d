lib/core/system.ml: Array Econ Float Numerics Printf Rootfind Vec
