lib/core/welfare.mli: Nash Numerics Subsidy_game System
