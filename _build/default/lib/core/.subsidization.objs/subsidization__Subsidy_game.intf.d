lib/core/subsidy_game.mli: Gametheory Numerics System
