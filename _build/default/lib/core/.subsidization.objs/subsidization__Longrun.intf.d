lib/core/longrun.mli: Nash System
