lib/core/sensitivity.ml: Array Diff Econ Float Linalg List Mat Nash Numerics Subsidy_game System Vec
