lib/core/longrun.ml: Array Float List Nash Numerics Option Subsidy_game System
