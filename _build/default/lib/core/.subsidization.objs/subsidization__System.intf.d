lib/core/system.mli: Econ Numerics
