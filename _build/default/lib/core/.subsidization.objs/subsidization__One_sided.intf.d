lib/core/one_sided.mli: System
