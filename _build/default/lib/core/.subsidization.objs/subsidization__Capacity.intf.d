lib/core/capacity.mli: System
