lib/core/duopoly.mli: Econ Numerics
