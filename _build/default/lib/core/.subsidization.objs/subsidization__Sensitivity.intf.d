lib/core/sensitivity.mli: Numerics Subsidy_game System
