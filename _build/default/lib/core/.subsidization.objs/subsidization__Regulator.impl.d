lib/core/regulator.ml: Array Float List Policy Revenue Scenario Subsidy_game
