lib/core/duopoly.ml: Array Econ Float Gametheory Numerics Optimize System Vec
