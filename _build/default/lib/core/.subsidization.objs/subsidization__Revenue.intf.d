lib/core/revenue.mli: Nash Numerics Subsidy_game
