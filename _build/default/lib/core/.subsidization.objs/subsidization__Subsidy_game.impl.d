lib/core/subsidy_game.ml: Array Econ Float Gametheory Numerics Printf System Vec
