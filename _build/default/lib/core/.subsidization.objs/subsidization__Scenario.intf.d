lib/core/scenario.mli: Econ Numerics System
