lib/core/dynamics.mli: Gametheory Numerics Subsidy_game
