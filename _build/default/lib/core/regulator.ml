type regime = {
  cap : float;
  price_cap : float option;
  price : float;
  revenue : float;
  welfare : float;
  utilization : float;
}

let isp_price ?(p_max = 2.5) sys ~cap ~price_cap =
  let ceiling = match price_cap with Some c -> Float.min c p_max | None -> p_max in
  if ceiling <= 0. then 0.
  else begin
    let game = Subsidy_game.make sys ~price:0. ~cap in
    let p_star, _ = Revenue.optimal_price ~p_max:ceiling game in
    p_star
  end

let evaluate ?p_max sys ~cap ~price_cap =
  let price = isp_price ?p_max sys ~cap ~price_cap in
  let point = Policy.point_at sys ~price ~cap in
  {
    cap;
    price_cap;
    price;
    revenue = point.Policy.revenue;
    welfare = point.Policy.welfare;
    utilization = point.Policy.utilization;
  }

let best_by_welfare regimes =
  match regimes with
  | [] -> invalid_arg "Regulator: no candidate regimes"
  | first :: rest ->
    List.fold_left (fun best r -> if r.welfare > best.welfare then r else best) first rest

let optimal_policy ?p_max ?caps sys ~price_cap =
  let caps = match caps with Some c -> c | None -> Scenario.q_levels () in
  best_by_welfare
    (Array.to_list (Array.map (fun cap -> evaluate ?p_max sys ~cap ~price_cap) caps))

let optimal_policy_with_price_cap ?p_max ?caps ?price_caps sys =
  let caps = match caps with Some c -> c | None -> Scenario.q_levels () in
  let price_caps =
    match price_caps with Some c -> c | None -> [| 0.2; 0.4; 0.6; 0.8; 1.2; 1.6 |]
  in
  let candidates =
    List.concat_map
      (fun cap ->
        evaluate ?p_max sys ~cap ~price_cap:None
        :: Array.to_list
             (Array.map
                (fun ceiling -> evaluate ?p_max sys ~cap ~price_cap:(Some ceiling))
                price_caps))
      (Array.to_list caps)
  in
  best_by_welfare candidates
