(** System welfare (Section 5.2, Corollary 2).

    The paper measures welfare as the CPs' gross profit
    [W = sum_i v_i theta_i]: it internalizes the subsidy transfer (the
    subsidy moves money from CP to ISP via users without destroying it)
    and proxies user value. A consumer-surplus extension is provided for
    completeness. *)

val of_state : System.t -> System.state -> float
(** [W = sum_i v_i theta_i]. *)

val of_equilibrium : Subsidy_game.t -> Nash.equilibrium -> float

val consumer_surplus : ?t_max:float -> System.t -> System.state -> float
(** Users' surplus under the valuation interpretation of Assumption 2:
    [sum_i lambda_i(phi) * integral_(t_i)^(t_max) m_i(x) dx] — each unit
    of traffic is consumed by the users whose valuation exceeds its
    charge. Integrated adaptively up to [t_max] (default 50). *)

val total_surplus : ?t_max:float -> Subsidy_game.t -> Nash.equilibrium -> float
(** CP gross profit plus ISP revenue plus consumer surplus minus the
    subsidy flow (already internalized): [W + R + CS - subsidy_flow],
    where [subsidy_flow = sum_i s_i theta_i] is counted once inside CP
    profit ([U_i = (v_i - s_i) theta_i]) and once inside consumer
    gains, so the accounting identity keeps transfers neutral. *)

type corollary2 = {
  lhs : float;  (** weighted average value [sum_i (w_i / sum w) v_i] *)
  rhs : float;  (** [sum_i (-eps^lambdai_mi) v_i] via equation (14) *)
  dphi_dq : float;
  predicted_welfare_increase : bool;  (** [lhs > rhs], valid when [dphi_dq > 0] *)
}

val corollary2 : ?dp_dq:float -> Subsidy_game.t -> subsidies:Numerics.Vec.t -> corollary2
(** Evaluate the Corollary-2 welfare condition at an equilibrium
    profile, using the Theorem-8 population derivatives for the weights
    [w_i = lambda_i dm_i/dq]. *)
