(** Long-run investment dynamics (Sections 4-6 narrative).

    The paper's answer to "subsidization congests the network and hurts
    congestion-sensitive CPs" is dynamic: higher utilization raises ISP
    margins, margins fund capacity, capacity relieves the congestion.
    This module simulates that loop over discrete periods:

    + the market settles at the subsidization equilibrium for the
      current capacity;
    + the ISP earns [profit = R - unit_cost * mu] and converts a
      fraction [reinvestment] of positive profit into new capacity at
      price [unit_cost];
    + capacity depreciates by [depreciation] per period.

    Capacity follows
    [mu' = mu (1 - depreciation) + reinvestment * max 0 profit / unit_cost]. *)

type params = {
  periods : int;  (** simulation length, [>= 1] *)
  unit_cost : float;  (** cost of one unit of capacity, [> 0] *)
  reinvestment : float;  (** fraction of profit invested, [0..1] *)
  depreciation : float;  (** capacity decay per period, [0..1) *)
}

val default_params : params
(** 30 periods, unit cost 0.2, reinvestment 0.5, depreciation 0.05. *)

type snapshot = {
  period : int;
  capacity : float;
  equilibrium : Nash.equilibrium;
  revenue : float;
  profit : float;
}

val simulate :
  ?params:params -> System.t -> price:float -> cap:float -> snapshot array
(** Fixed-price simulation from the system's initial capacity. Element
    [0] is the market before any investment. *)

val throughput_path : snapshot array -> cp:int -> float array
(** Convenience: one CP's equilibrium throughput per period. *)

val capacity_path : snapshot array -> float array

val steady_state_capacity : snapshot array -> float option
(** The last capacity, when the final relative step is below 1%. *)
