open Numerics

let at_equilibrium game (eq : Nash.equilibrium) =
  Subsidy_game.price game *. eq.Nash.state.System.aggregate

let upsilon game ~subsidies =
  let st = Subsidy_game.state game ~subsidies in
  let sys = Subsidy_game.system game in
  let acc = ref 1. in
  Array.iteri
    (fun j cp ->
      acc :=
        !acc
        +. st.System.populations.(j)
           *. Econ.Throughput.derivative cp.Econ.Cp.throughput st.System.phi
           /. st.System.gap_slope)
    sys.System.cps;
  !acc

let price_elasticities game ~subsidies =
  let p = Subsidy_game.price game in
  if p <= 0. then invalid_arg "Revenue.price_elasticities: requires p > 0";
  let st = Subsidy_game.state game ~subsidies in
  let sys = Subsidy_game.system game in
  let dsdp = Sensitivity.ds_dp game ~subsidies in
  Vec.init (Subsidy_game.dim game) (fun i ->
      let cp = sys.System.cps.(i) in
      p /. st.System.populations.(i)
      *. Econ.Demand.derivative cp.Econ.Cp.demand st.System.charges.(i)
      *. (1. -. dsdp.(i)))

let marginal_formula game ~subsidies =
  let st = Subsidy_game.state game ~subsidies in
  let eps = price_elasticities game ~subsidies in
  let ups = upsilon game ~subsidies in
  st.System.aggregate +. (ups *. Vec.dot eps st.System.throughputs)

let marginal_numeric ?(h = 1e-5) game =
  let p = Subsidy_game.price game in
  let revenue_at price =
    let g = Subsidy_game.with_price game price in
    let eq = Nash.solve g in
    at_equilibrium g eq
  in
  if p -. h < 0. then (revenue_at (p +. h) -. revenue_at p) /. h
  else (revenue_at (p +. h) -. revenue_at (p -. h)) /. (2. *. h)

let curve game ~prices =
  let warm = ref None in
  Array.map
    (fun p ->
      let g = Subsidy_game.with_price game p in
      let eq = Nash.solve ?x0:!warm g in
      warm := Some eq.Nash.subsidies;
      (p, eq, at_equilibrium g eq))
    prices

let optimal_price ?(p_max = 3.) ?(points = 49) game =
  if p_max <= 0. then invalid_arg "Revenue.optimal_price: p_max must be positive";
  (* warm-start consecutive Nash solves: the search visits nearby prices,
     whose equilibria are close *)
  let warm = ref None in
  let revenue_at p =
    let g = Subsidy_game.with_price game p in
    let eq = Nash.solve ?x0:!warm g in
    warm := Some eq.Nash.subsidies;
    at_equilibrium g eq
  in
  let r = Optimize.grid_then_golden ~points ~tol:1e-5 revenue_at ~lo:0. ~hi:p_max in
  (r.Optimize.x, r.Optimize.fx)
