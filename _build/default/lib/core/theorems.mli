(** Numeric verification of the paper's formal results.

    Each function re-derives a theorem's claim by an independent route
    (finite differences of re-solved equilibria, multistart probes,
    sign checks) and compares it to the analytic formulas implemented in
    the library. These checks back both the test suite and the
    [verify] experiment of the CLI. *)

type check = {
  name : string;
  passed : bool;
  detail : string;  (** the compared quantities, for diagnosis *)
}

val pp_check : Format.formatter -> check -> unit

val all_passed : check list -> bool

(** {2 Section 3: the basic model} *)

val lemma1_uniqueness : System.t -> charges:Numerics.Vec.t -> check
(** The gap function is strictly increasing on a [phi] grid and the
    equilibrium is insensitive to the solver's starting guess. *)

val lemma2_invariance :
  System.t -> charges:Numerics.Vec.t -> cp:int -> kappa:float -> check
(** Rescaling CP [cp] by [kappa] (Lemma 2) leaves the utilization
    unchanged. *)

val theorem1 : System.t -> charges:Numerics.Vec.t -> check list
(** Signs and finite-difference agreement of [dphi/dmu], [dphi/dm_i]
    and the throughput derivatives. *)

val theorem2 : System.t -> price:float -> check list
(** Signs and finite-difference agreement of [dphi/dp] and
    [dtheta/dp]; condition (7) against the observed sign of
    [dtheta_i/dp]. *)

(** {2 Section 4: the subsidization game} *)

val lemma3 :
  Subsidy_game.t -> subsidies:Numerics.Vec.t -> cp:int -> delta:float -> check list
(** A unilateral subsidy increase raises own throughput and utilization
    and weakly lowers everyone else's throughput. *)

val theorem3 : Subsidy_game.t -> Nash.equilibrium -> check list
(** KKT residual and the [s_i = min tau_i q] fixed-point form at the
    computed equilibrium. *)

val theorem4 : Numerics.Rng.t -> Subsidy_game.t -> check
(** Multistart equilibria coincide (uniqueness probe). *)

val theorem5 : Subsidy_game.t -> cp:int -> delta:float -> check
(** Raising [v_cp] by [delta] weakly raises CP [cp]'s equilibrium
    subsidy. *)

val theorem6 : Subsidy_game.t -> Nash.equilibrium -> check list
(** The sensitivity formulas (11)-(12) against finite differences of
    re-solved equilibria. *)

(** {2 Section 5: revenue and welfare} *)

val theorem7 : Subsidy_game.t -> Nash.equilibrium -> check
(** Marginal revenue: equation (13) against a numeric [dR/dp]. *)

val corollary1 : System.t -> price:float -> caps:float array -> check list
(** Along a fixed-price deregulation ladder: subsidies, utilization and
    revenue are (weakly) nondecreasing, given the stability condition. *)

val corollary2 : Subsidy_game.t -> Nash.equilibrium -> check
(** The welfare condition's predicted sign against a numeric
    [dW/dq]. *)

val theorem8 : System.t -> price:float -> cap:float -> dp_dq:float -> check list
(** The Theorem-8 state derivatives against finite differences with the
    given ISP price response. *)

(** {2 Suites} *)

val run_paper_suite : ?seed:int64 -> unit -> check list
(** Every check above, instantiated on the paper's Figure 7-11 scenario
    (plus the Figure 4-5 scenario for Section 3), at representative
    prices and policies. *)
