(** Matrix classes used in the uniqueness and stability analysis.

    Theorem 4 requires [-grad u] to be a P-function (its Jacobian a
    P-matrix on the relevant domain); Corollary 1 requires it to be an
    M-matrix (a P-matrix with non-positive off-diagonal entries, the
    Leontief condition). *)

val is_p_matrix : ?tol:float -> Numerics.Mat.t -> bool
(** All [2^n - 1] principal minors strictly positive (above [tol],
    default 0). Exponential in the dimension; fine for the game sizes
    here (n <= ~15). Raises [Invalid_argument] beyond dimension 20. *)

val is_m_matrix : ?tol:float -> Numerics.Mat.t -> bool
(** P-matrix with off-diagonal entries [<= tol]. *)

val is_off_diagonally_nonnegative : ?tol:float -> Numerics.Mat.t -> bool
(** All off-diagonal entries [>= -tol]: the paper's "off-diagonally
    monotone" condition on [grad u] (so that [-grad u] is Leontief). *)

val is_strictly_diagonally_dominant : ?tol:float -> Numerics.Mat.t -> bool
(** Rows satisfy [|a_ii| > sum_{j<>i} |a_ij| + tol]; a cheap sufficient
    condition for the P-property when diagonals are positive. *)

val is_positive_definite_symmetric_part : ?tol:float -> Numerics.Mat.t -> bool
(** Whether [(A + A^T) / 2] is positive definite (all eigenvalues above
    [tol]); sufficient for the P-property and for strong monotonicity of
    the game map. *)

val inverse_nonnegative : ?tol:float -> Numerics.Mat.t -> bool
(** Whether [A^{-1}] has all entries [>= -tol]; characteristic of
    M-matrices, used by the Corollary-1 sign argument. [false] when [A]
    is singular. *)
