open Numerics

let require_square name m =
  if not (Mat.is_square m) then invalid_arg ("Matrix_props." ^ name ^ ": not square")

(* Enumerate non-empty index subsets of {0..n-1} as bit masks. *)
let is_p_matrix ?(tol = 0.) m =
  require_square "is_p_matrix" m;
  let n = Mat.rows m in
  if n > 20 then invalid_arg "Matrix_props.is_p_matrix: dimension too large (max 20)";
  let ok = ref true in
  let mask = ref 1 in
  let total = 1 lsl n in
  while !ok && !mask < total do
    let idx =
      Array.of_list
        (List.filter (fun i -> (!mask lsr i) land 1 = 1) (List.init n (fun i -> i)))
    in
    if Linalg.principal_minor m idx <= tol then ok := false;
    incr mask
  done;
  !ok

let off_diagonal_bounded_above ~bound m =
  let n = Mat.rows m in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Mat.get m i j > bound then ok := false
    done
  done;
  !ok

let is_m_matrix ?(tol = 0.) m =
  require_square "is_m_matrix" m;
  off_diagonal_bounded_above ~bound:tol m && is_p_matrix ~tol:0. m

let is_off_diagonally_nonnegative ?(tol = 0.) m =
  require_square "is_off_diagonally_nonnegative" m;
  let n = Mat.rows m in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Mat.get m i j < -.tol then ok := false
    done
  done;
  !ok

let is_strictly_diagonally_dominant ?(tol = 0.) m =
  require_square "is_strictly_diagonally_dominant" m;
  let n = Mat.rows m in
  let ok = ref true in
  for i = 0 to n - 1 do
    let off = ref 0. in
    for j = 0 to n - 1 do
      if i <> j then off := !off +. Float.abs (Mat.get m i j)
    done;
    if Float.abs (Mat.get m i i) <= !off +. tol then ok := false
  done;
  !ok

let is_positive_definite_symmetric_part ?(tol = 0.) m =
  require_square "is_positive_definite_symmetric_part" m;
  let sym = Mat.scale 0.5 (Mat.add m (Mat.transpose m)) in
  let eigs = Eigen.symmetric_eigenvalues sym in
  Array.for_all (fun e -> e > tol) eigs

let inverse_nonnegative ?(tol = 0.) m =
  require_square "inverse_nonnegative" m;
  match Linalg.inverse m with
  | inv ->
    let ok = ref true in
    for i = 0 to Mat.rows inv - 1 do
      for j = 0 to Mat.cols inv - 1 do
        if Mat.get inv i j < -.tol then ok := false
      done
    done;
    !ok
  | exception Linalg.Singular -> false
