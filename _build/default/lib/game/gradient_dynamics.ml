open Numerics

type result = {
  trajectory : Ode.trajectory;
  final : Vec.t;
  settled_at : float option;
  stationary : bool;
}

let vector_field ~marginal ~box s =
  Vec.init (Box.dim box) (fun i ->
      let u = marginal i s in
      (* freeze components pushing out of the box at an active bound *)
      if Box.on_lower box s i && u < 0. then 0.
      else if Box.on_upper box s i && u > 0. then 0.
      else u)

let flow ?method_ ?(tol = 1e-8) ~marginal ~box ~horizon ~dt ~x0 () =
  if horizon <= 0. then invalid_arg "Gradient_dynamics.flow: horizon must be positive";
  let f _t s = vector_field ~marginal ~box s in
  let post s = Box.project box s in
  let trajectory =
    Ode.integrate ?method_ ~post ~f ~t0:0. ~t1:horizon ~dt (Box.project box x0)
  in
  let final = Ode.final trajectory in
  let u_map s = Vec.init (Box.dim box) (fun i -> -.marginal i s) in
  {
    trajectory;
    final;
    settled_at = Ode.converged_at ~tol trajectory;
    stationary = Vi.residual u_map box final <= Float.max (10. *. tol) 1e-6;
  }
