(** Finite-dimensional variational inequalities on boxes.

    A point [x] in [K] solves [VI(F, K)] when [(y - x)^T F(x) >= 0] for
    all [y in K]. With [F = -u] (minus the marginal utilities) and
    [K = [0,q]^n], solutions are exactly the Nash equilibria of the
    concave subsidization game (Facchinei-Pang, Prop. 1.4.2), which is
    how Theorem 6's sensitivity analysis is justified. *)

type f = Numerics.Vec.t -> Numerics.Vec.t

val natural_map : f -> Box.t -> Numerics.Vec.t -> Numerics.Vec.t
(** [x - Proj_K (x - F x)]: zero exactly at solutions. *)

val residual : f -> Box.t -> Numerics.Vec.t -> float
(** Sup norm of the natural map: a verifiable optimality certificate. *)

val is_solution : ?tol:float -> f -> Box.t -> Numerics.Vec.t -> bool
(** [residual <= tol] (default [1e-7]). *)

val kkt_violation : f -> Box.t -> Numerics.Vec.t -> float
(** Maximum complementarity violation of the box-KKT system: for each
    coordinate, [F_i >= 0] at the lower bound, [F_i <= 0] at the upper
    bound and [F_i = 0] inside. Equivalent to [residual] up to
    clamping, reported in the units of [F]. *)

val projection_step :
  gamma:float -> f -> Box.t -> Numerics.Vec.t -> Numerics.Vec.t
(** One forward projection step [Proj_K (x - gamma F x)]; the basis of
    the extragradient solver. *)

val solve_extragradient :
  ?gamma:float ->
  ?tol:float ->
  ?max_iter:int ->
  f ->
  Box.t ->
  x0:Numerics.Vec.t ->
  Numerics.Vec.t
(** Korpelevich extragradient iteration. Converges for monotone
    Lipschitz [F] with a small enough step [gamma] (default 0.2).
    Raises [Numerics.Fixedpoint.No_convergence]. *)

val is_monotone_on_samples :
  ?samples:int -> Numerics.Rng.t -> f -> Box.t -> bool
(** Randomized check of map monotonicity
    [(F x - F y)^T (x - y) >= 0] on sample pairs; a necessary condition
    witness, not a proof. *)
