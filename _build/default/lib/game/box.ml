open Numerics

type t = { lo : Vec.t; hi : Vec.t }

let make ~lo ~hi =
  if Vec.dim lo <> Vec.dim hi then invalid_arg "Box.make: dimension mismatch";
  Array.iteri
    (fun i l ->
      if l > hi.(i) then
        invalid_arg (Printf.sprintf "Box.make: lo.(%d)=%g > hi.(%d)=%g" i l i hi.(i)))
    lo;
  { lo = Vec.copy lo; hi = Vec.copy hi }

let uniform ~dim ~lo ~hi =
  if dim <= 0 then invalid_arg "Box.uniform: dimension must be positive";
  make ~lo:(Vec.make dim lo) ~hi:(Vec.make dim hi)

let dim b = Vec.dim b.lo
let lo b = Vec.copy b.lo
let hi b = Vec.copy b.hi
let lo_i b i = b.lo.(i)
let hi_i b i = b.hi.(i)

let contains ?(tol = 0.) b x =
  Vec.dim x = dim b
  && Array.for_all (fun ok -> ok)
       (Array.init (dim b) (fun i -> x.(i) >= b.lo.(i) -. tol && x.(i) <= b.hi.(i) +. tol))

let project b x =
  if Vec.dim x <> dim b then invalid_arg "Box.project: dimension mismatch";
  Vec.init (dim b) (fun i -> Float.min b.hi.(i) (Float.max b.lo.(i) x.(i)))

let center b = Vec.init (dim b) (fun i -> 0.5 *. (b.lo.(i) +. b.hi.(i)))

let random_point rng b =
  Vec.init (dim b) (fun i ->
      if b.lo.(i) = b.hi.(i) then b.lo.(i)
      else Rng.uniform rng ~lo:b.lo.(i) ~hi:b.hi.(i))

let on_lower ?(tol = 1e-9) b x i = x.(i) <= b.lo.(i) +. tol
let on_upper ?(tol = 1e-9) b x i = x.(i) >= b.hi.(i) -. tol

let interior_coords ?(tol = 1e-9) b x =
  let idx = ref [] in
  for i = dim b - 1 downto 0 do
    if (not (on_lower ~tol b x i)) && not (on_upper ~tol b x i) then idx := i :: !idx
  done;
  Array.of_list !idx
