open Numerics

type f = Vec.t -> Vec.t

let natural_map f box x =
  let fx = f x in
  Vec.sub x (Box.project box (Vec.sub x fx))

let residual f box x = Vec.norm_inf (natural_map f box x)

let is_solution ?(tol = 1e-7) f box x = residual f box x <= tol

let kkt_violation f box x =
  let fx = f x in
  let worst = ref 0. in
  for i = 0 to Box.dim box - 1 do
    let violation =
      if Box.on_lower box x i then Float.max 0. (-.fx.(i))
      else if Box.on_upper box x i then Float.max 0. fx.(i)
      else Float.abs fx.(i)
    in
    worst := Float.max !worst violation
  done;
  !worst

let projection_step ~gamma f box x = Box.project box (Vec.axpy (-.gamma) (f x) x)

let solve_extragradient ?(gamma = 0.2) ?(tol = 1e-10) ?(max_iter = 50_000) f box ~x0 =
  if gamma <= 0. then invalid_arg "Vi.solve_extragradient: gamma must be positive";
  let x = ref (Box.project box x0) in
  let rec loop iter =
    if iter > max_iter then
      raise (Fixedpoint.No_convergence "Vi.solve_extragradient: iteration budget");
    let y = projection_step ~gamma f box !x in
    let x' = Box.project box (Vec.axpy (-.gamma) (f y) !x) in
    let moved = Vec.dist_inf x' !x in
    x := x';
    if moved <= tol && residual f box !x <= Float.max tol 1e-8 then !x
    else loop (iter + 1)
  in
  loop 1

let is_monotone_on_samples ?(samples = 64) rng f box =
  let ok = ref true in
  for _ = 1 to samples do
    if !ok then begin
      let x = Box.random_point rng box in
      let y = Box.random_point rng box in
      let lhs = Vec.dot (Vec.sub (f x) (f y)) (Vec.sub x y) in
      if lhs < -1e-9 then ok := false
    end
  done;
  !ok
