lib/game/best_response.ml: Array Box Grid List Numerics Optimize Rootfind Stdlib Vec
