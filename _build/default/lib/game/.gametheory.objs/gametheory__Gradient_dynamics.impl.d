lib/game/gradient_dynamics.ml: Box Float Numerics Ode Vec Vi
