lib/game/vi.ml: Array Box Fixedpoint Float Numerics Vec
