lib/game/matrix_props.ml: Array Eigen Float Linalg List Mat Numerics
