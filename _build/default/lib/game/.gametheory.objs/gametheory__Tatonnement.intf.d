lib/game/tatonnement.mli: Best_response Numerics
