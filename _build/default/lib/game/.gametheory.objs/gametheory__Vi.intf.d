lib/game/vi.mli: Box Numerics
