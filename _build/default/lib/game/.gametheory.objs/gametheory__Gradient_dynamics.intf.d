lib/game/gradient_dynamics.mli: Box Numerics
