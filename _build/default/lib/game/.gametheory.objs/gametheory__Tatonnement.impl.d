lib/game/tatonnement.ml: Array Best_response Box List Numerics Stdlib Vec
