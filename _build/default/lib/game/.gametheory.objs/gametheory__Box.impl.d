lib/game/box.ml: Array Float Numerics Printf Rng Vec
