lib/game/best_response.mli: Box Numerics
