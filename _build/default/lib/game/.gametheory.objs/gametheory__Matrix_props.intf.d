lib/game/matrix_props.mli: Numerics
