lib/game/box.mli: Numerics
