(** Box-shaped strategy spaces [prod_i [lo_i, hi_i]].

    The subsidization game plays on the uniform box [[0, q]^n], but the
    machinery is generic. *)

type t

val make : lo:Numerics.Vec.t -> hi:Numerics.Vec.t -> t
(** Raises [Invalid_argument] unless [lo] and [hi] have equal dimension
    and [lo_i <= hi_i] for every coordinate. *)

val uniform : dim:int -> lo:float -> hi:float -> t

val dim : t -> int

val lo : t -> Numerics.Vec.t

val hi : t -> Numerics.Vec.t

val lo_i : t -> int -> float

val hi_i : t -> int -> float

val contains : ?tol:float -> t -> Numerics.Vec.t -> bool

val project : t -> Numerics.Vec.t -> Numerics.Vec.t
(** Euclidean projection (coordinate-wise clamp). *)

val center : t -> Numerics.Vec.t

val random_point : Numerics.Rng.t -> t -> Numerics.Vec.t

val on_lower : ?tol:float -> t -> Numerics.Vec.t -> int -> bool
(** Whether coordinate [i] sits on its lower bound (within [tol],
    default [1e-9]). *)

val on_upper : ?tol:float -> t -> Numerics.Vec.t -> int -> bool

val interior_coords : ?tol:float -> t -> Numerics.Vec.t -> int array
(** Indices strictly inside their interval, in increasing order. *)
