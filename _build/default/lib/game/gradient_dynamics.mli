(** Continuous-time gradient (tatonnement) dynamics on a box.

    Each player adjusts its strategy in the direction of its marginal
    payoff, projected onto the strategy box:
    [ds_i/dt = u_i(s)], clipped so the state never leaves the box.
    Stationary points of the projected flow are exactly the box-KKT
    points — the Nash equilibria of the concave game. This gives the
    off-equilibrium adjustment story accompanying Theorems 4 and 6. *)

type result = {
  trajectory : Numerics.Ode.trajectory;
  final : Numerics.Vec.t;
  settled_at : float option;  (** time after which motion stays below [tol] *)
  stationary : bool;  (** final state is a VI solution of [-u] *)
}

val flow :
  ?method_:[ `Rk4 | `Euler ] ->
  ?tol:float ->
  marginal:(int -> Numerics.Vec.t -> float) ->
  box:Box.t ->
  horizon:float ->
  dt:float ->
  x0:Numerics.Vec.t ->
  unit ->
  result
(** Integrate the projected gradient flow from [x0] for [horizon] time
    units with step [dt]. [tol] (default [1e-8]) is used both for the
    settling diagnosis and the final stationarity certificate. *)

val vector_field :
  marginal:(int -> Numerics.Vec.t -> float) ->
  box:Box.t ->
  Numerics.Vec.t ->
  Numerics.Vec.t
(** The projected field itself: [u_i(s)], zeroed when it points out of
    the box at an active bound. Exposed for testing. *)
