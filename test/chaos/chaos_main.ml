(* Registry-wide chaos sweep: every default Fault scenario crossed with
   every registered experiment, under a hard per-pair deadline. The
   resilience contract (DESIGN §11) demands each pair either completes
   or is contained as a typed manifest record: no hang, no escaped
   exception, and a run.v1 entry that survives its own codec. Exits
   non-zero on any breach, so CI can gate on it. *)

let () =
  let limits = Runner.Watchdog.limits ~deadline_s:30. () in
  let report =
    Runner.Chaos.run ~limits
      ~on_event:(function
        | Runner.Supervisor.Started { id; _ } -> Printf.printf "chaos: %s\n%!" id
        | _ -> ())
      ()
  in
  print_newline ();
  print_endline (Report.Table.to_string (Runner.Chaos.verdict_table report));
  let breaches =
    List.filter (fun v -> not v.Runner.Chaos.contained) report.Runner.Chaos.verdicts
  in
  let n = List.length report.Runner.Chaos.verdicts in
  if report.Runner.Chaos.ok then
    Printf.printf "chaos: all %d (scenario, experiment) pairs contained\n" n
  else begin
    Printf.printf "chaos: CONTAINMENT BREACH in %d of %d pairs\n"
      (List.length breaches) n;
    List.iter
      (fun v ->
        Printf.printf "  %s:%s -- %s\n" v.Runner.Chaos.scenario
          v.Runner.Chaos.experiment v.Runner.Chaos.note)
      breaches
  end;
  exit (if report.Runner.Chaos.ok then 0 else 1)
