(* Resilience suite: proves every fallback link of Numerics.Robust fires
   under an injected fault, that the telemetry counters record it, and
   that a poisoned market degrades a Monte-Carlo sweep instead of
   killing it. *)

open Numerics
open Test_helpers

let cubic x = (x *. x *. x) -. (2. *. x) -. 5.
let cubic_root = 2.0945514815423265

(* ------------------------------------------------------------------ *)
(* root-finding fallback chain *)

let test_clean_newton () =
  Robust.reset_stats ();
  let df x = (3. *. x *. x) -. 2. in
  (match Robust.root cubic ~df ~x0:2. ~lo:0. ~hi:3. with
  | Error e -> Alcotest.failf "chain failed: %s" (Robust.error_message e)
  | Ok s ->
    check_close ~tol:1e-10 "root" cubic_root s.Robust.result.Rootfind.root;
    check_true "newton wins unfaulted" (s.Robust.method_used = Robust.Newton);
    Alcotest.(check int) "no fallbacks" 0 s.Robust.fallbacks);
  let st = Robust.stats () in
  Alcotest.(check int) "one root call" 1 st.Robust.root_calls;
  Alcotest.(check int) "one newton attempt" 1 st.Robust.newton_attempts;
  Alcotest.(check int) "no secant attempt" 0 st.Robust.secant_attempts;
  Alcotest.(check int) "no failures" 0 st.Robust.failures

let test_nan_recovered_by_bisection () =
  Robust.reset_stats ();
  (* the NaN pocket swallows Newton's start (0.71) and the first secant /
     Brent interpolation point (5/7 = 0.714...), but no bisection
     midpoint: only the last link of the chain survives *)
  let inj = Fault.inject (Fault.Nan_region { lo = 0.70; hi = 0.73 }) cubic in
  let df x = (3. *. x *. x) -. 2. in
  (match Robust.root inj.Fault.f ~df ~x0:0.71 ~lo:0. ~hi:3. with
  | Error e -> Alcotest.failf "chain failed: %s" (Robust.error_message e)
  | Ok s ->
    check_close ~tol:1e-9 "root" cubic_root s.Robust.result.Rootfind.root;
    check_true "bisection recovered" (s.Robust.method_used = Robust.Bisection);
    Alcotest.(check int) "three fallbacks" 3 s.Robust.fallbacks);
  let st = Robust.stats () in
  Alcotest.(check int) "newton attempted" 1 st.Robust.newton_attempts;
  Alcotest.(check int) "secant attempted" 1 st.Robust.secant_attempts;
  Alcotest.(check int) "brent attempted" 1 st.Robust.brent_attempts;
  Alcotest.(check int) "bisection attempted" 1 st.Robust.bisection_attempts;
  Alcotest.(check int) "nan detected by each poisoned link" 3 st.Robust.non_finite;
  Alcotest.(check int) "fallbacks counted" 3 st.Robust.fallbacks;
  Alcotest.(check int) "no unrecovered failure" 0 st.Robust.failures;
  check_true "fault actually fired" (inj.Fault.triggered () >= 3)

let test_spike_recovered_by_secant () =
  Robust.reset_stats ();
  (* a discontinuity spike at Newton's start catapults the iterate into
     flat far field where the derivative underflows; the secant on the
     interval ends never touches the spike *)
  let base x = exp x -. 20. in
  let inj = Fault.inject (Fault.Spike { at = 1.0; width = 0.05; height = 1e6 }) base in
  (match Robust.root inj.Fault.f ~df:exp ~x0:1.0 ~lo:0. ~hi:4. with
  | Error e -> Alcotest.failf "chain failed: %s" (Robust.error_message e)
  | Ok s ->
    check_close ~tol:1e-9 "root" (log 20.) s.Robust.result.Rootfind.root;
    check_true "secant recovered" (s.Robust.method_used = Robust.Secant);
    Alcotest.(check int) "one fallback" 1 s.Robust.fallbacks);
  let st = Robust.stats () in
  Alcotest.(check int) "newton attempted" 1 st.Robust.newton_attempts;
  Alcotest.(check int) "secant attempted" 1 st.Robust.secant_attempts;
  Alcotest.(check int) "brent never needed" 0 st.Robust.brent_attempts;
  check_true "spike fired exactly once (Newton's poisoned start)"
    (inj.Fault.triggered () = 1)

let test_plateau_recovered_by_brent () =
  Robust.reset_stats ();
  (* both interval ends sit on the plateau: the secant's first step is
     flat and dies; auto-bracketed Brent expands off the plateau, finds
     the sign change and converges *)
  let base x = x -. 2.5 in
  let inj = Fault.inject (Fault.Plateau { lo = 5.; hi = 11.; level = 3.7 }) base in
  (match Robust.root inj.Fault.f ~lo:6. ~hi:10. with
  | Error e -> Alcotest.failf "chain failed: %s" (Robust.error_message e)
  | Ok s ->
    check_close ~tol:1e-9 "root" 2.5 s.Robust.result.Rootfind.root;
    check_true "brent recovered" (s.Robust.method_used = Robust.Brent);
    Alcotest.(check int) "one fallback" 1 s.Robust.fallbacks);
  let st = Robust.stats () in
  Alcotest.(check int) "secant attempted" 1 st.Robust.secant_attempts;
  Alcotest.(check int) "brent attempted" 1 st.Robust.brent_attempts;
  Alcotest.(check int) "bisection never needed" 0 st.Robust.bisection_attempts;
  check_true "plateau fired" (inj.Fault.triggered () >= 2)

let test_budget_exhaustion_is_typed () =
  Robust.reset_stats ();
  let inj = Fault.inject (Fault.Budget 4) cubic in
  (match Robust.root inj.Fault.f ~lo:0. ~hi:3. with
  | Ok _ -> Alcotest.fail "expected a budget error"
  | Error e -> (
    match e.Robust.attempts with
    | [ { Robust.method_ = Robust.Secant; failure = Robust.Budget_exhausted _; _ } ] ->
      ()
    | _ -> Alcotest.failf "unexpected attempts: %s" (Robust.error_message e)));
  let st = Robust.stats () in
  Alcotest.(check int) "budget taxonomy" 1 st.Robust.budget_exhausted;
  Alcotest.(check int) "chain stops: no brent attempt" 0 st.Robust.brent_attempts;
  Alcotest.(check int) "counted as an unrecovered failure" 1 st.Robust.failures

(* ------------------------------------------------------------------ *)
(* fixed-point retry ladder *)

let test_oscillation_triggers_damping_retry () =
  Robust.reset_stats ();
  (* x -> 1 - x cycles with period 2 undamped; one halving settles it *)
  (match Robust.fixed_point (fun x -> 1. -. x) ~x0:0.2 with
  | Error e -> Alcotest.failf "retry ladder failed: %s" (Robust.error_message e)
  | Ok s ->
    check_close ~tol:1e-9 "fixed point" 0.5 s.Robust.fp.Fixedpoint.point;
    Alcotest.(check int) "one retry" 1 s.Robust.retries;
    check_close "halved damping" 0.5 s.Robust.damping_used);
  let st = Robust.stats () in
  Alcotest.(check int) "oscillation detected" 1 st.Robust.oscillations;
  Alcotest.(check int) "retry counted" 1 st.Robust.retries;
  Alcotest.(check int) "two damped attempts" 2 st.Robust.damped_attempts;
  Alcotest.(check int) "no failure" 0 st.Robust.failures

let test_divergence_exhausts_retry_budget () =
  Robust.reset_stats ();
  (* slope-2 repeller: every damping in the ladder still diverges *)
  (match Robust.fixed_point ~max_retries:2 (fun x -> (2. *. x) +. 1.) ~x0:0. with
  | Ok _ -> Alcotest.fail "expected divergence"
  | Error e ->
    Alcotest.(check int) "three attempts recorded" 3 (List.length e.Robust.attempts);
    List.iter
      (fun a ->
        check_true "each attempt diverged"
          (match a.Robust.failure with Robust.Diverged _ -> true | _ -> false))
      e.Robust.attempts);
  let st = Robust.stats () in
  Alcotest.(check int) "divergence taxonomy" 3 st.Robust.diverged;
  Alcotest.(check int) "retry budget spent" 2 st.Robust.retries;
  Alcotest.(check int) "one unrecovered failure" 1 st.Robust.failures

let test_fixed_point_nan_guard () =
  Robust.reset_stats ();
  let inj = Fault.inject (Fault.Nan_after 3) cos in
  (match Robust.fixed_point ~max_retries:1 inj.Fault.f ~x0:1. with
  | Ok _ -> Alcotest.fail "expected poison to be detected"
  | Error e ->
    check_true "poison site recorded"
      (List.exists
         (fun a ->
           match a.Robust.failure with Robust.Non_finite _ -> true | _ -> false)
         e.Robust.attempts));
  let st = Robust.stats () in
  Alcotest.(check int) "poison on the attempt and its retry" 2 st.Robust.non_finite;
  Alcotest.(check int) "one unrecovered failure" 1 st.Robust.failures

(* ------------------------------------------------------------------ *)
(* tatonnement damping retry *)

let test_tatonnement_damping_retry () =
  Robust.reset_stats ();
  (* chase-and-evade: undamped Gauss-Seidel best response cycles with
     period 2; halved damping contracts to the (0.5, 0.5) equilibrium *)
  let box = Gametheory.Box.uniform ~dim:2 ~lo:0. ~hi:1. in
  let payoff i s =
    if i = 0 then -.((s.(0) -. s.(1)) ** 2.)
    else -.((s.(1) -. (1. -. s.(0))) ** 2.)
  in
  let marginal i s =
    if i = 0 then -2. *. (s.(0) -. s.(1)) else -2. *. (s.(1) -. (1. -. s.(0)))
  in
  let game = Gametheory.Best_response.make ~marginal ~box ~payoff () in
  let r =
    Gametheory.Tatonnement.run_resilient ~max_sweeps:80 game
      ~x0:(Vec.of_list [ 0.; 0. ])
  in
  check_true "converged after damping retry" r.Gametheory.Tatonnement.trace.converged;
  check_true "at least one retry" (r.Gametheory.Tatonnement.retries >= 1);
  let final = Gametheory.Tatonnement.final r.Gametheory.Tatonnement.trace in
  check_close ~tol:1e-6 "player 0 settles" 0.5 final.(0);
  check_close ~tol:1e-6 "player 1 settles" 0.5 final.(1);
  check_true "retries visible in shared telemetry" ((Robust.stats ()).Robust.retries >= 1)

(* ------------------------------------------------------------------ *)
(* typed solver errors out of the equilibrium stack *)

let poisoned_game () =
  let sys = Subsidization.Scenario.random_system (Rng.create 7L) in
  let bad = { sys with Subsidization.System.capacity = Float.nan } in
  Subsidization.Subsidy_game.make bad ~price:0.8 ~cap:0.5

let test_system_typed_error () =
  let sys = Subsidization.Scenario.random_system (Rng.create 7L) in
  let bad = { sys with Subsidization.System.capacity = Float.nan } in
  let charges = Vec.make (Subsidization.System.n_cps bad) 0.3 in
  (match Subsidization.System.solve_result bad ~charges with
  | Ok _ -> Alcotest.fail "expected a structured error"
  | Error e ->
    Alcotest.(check int) "all four chain links tried" 4
      (List.length e.Numerics.Robust.attempts));
  (* the exception-style API raises the typed error, not Invalid_argument *)
  match Subsidization.System.solve bad ~charges with
  | _ -> Alcotest.fail "expected Solver_error"
  | exception Numerics.Robust.Solver_error _ -> ()

let test_nash_propagates_typed_error () =
  let game = poisoned_game () in
  (match Subsidization.Nash.solve_result game with
  | Ok _ -> Alcotest.fail "expected a structured error"
  | Error e -> check_true "attempts recorded" (e.Numerics.Robust.attempts <> []));
  match Subsidization.Nash.solve game with
  | _ -> Alcotest.fail "expected Solver_error"
  | exception Numerics.Robust.Solver_error _ -> ()

(* ------------------------------------------------------------------ *)
(* a poisoned market degrades the sweep instead of killing it *)

let test_poisoned_sweep_degrades () =
  Robust.reset_stats ();
  let outcome, degraded = Experiments.Robustness_exp.run_samples ~samples:6 ~poison:[ 3 ] () in
  Alcotest.(check int) "exactly one degraded sample" 1 (List.length degraded);
  (match degraded with
  | [ d ] ->
    Alcotest.(check int) "the poisoned index" 3 d.Experiments.Common.sample;
    check_true "reason is populated" (String.length d.Experiments.Common.reason > 0)
  | _ -> Alcotest.fail "expected a single degraded record");
  check_true "degraded table reported"
    (List.mem_assoc "degraded" outcome.Experiments.Common.tables);
  List.iter
    (fun c ->
      check_true
        (Printf.sprintf "robustness check under poison: %s (%s)"
           c.Subsidization.Theorems.name c.Subsidization.Theorems.detail)
        c.Subsidization.Theorems.passed)
    outcome.Experiments.Common.shape_checks;
  check_true "failure counted in telemetry" ((Robust.stats ()).Robust.failures >= 1)

let test_clean_sweep_has_no_degraded_rows () =
  let outcome, degraded = Experiments.Robustness_exp.run_samples ~samples:4 () in
  Alcotest.(check int) "no degraded samples" 0 (List.length degraded);
  check_true "no degraded table"
    (not (List.mem_assoc "degraded" outcome.Experiments.Common.tables))

let suite =
  ( "robust",
    [
      quick "clean newton" test_clean_newton;
      quick "nan -> bisection" test_nan_recovered_by_bisection;
      quick "spike -> secant" test_spike_recovered_by_secant;
      quick "plateau -> brent" test_plateau_recovered_by_brent;
      quick "budget -> typed error" test_budget_exhaustion_is_typed;
      quick "oscillation -> damping retry" test_oscillation_triggers_damping_retry;
      quick "divergence -> retry budget" test_divergence_exhausts_retry_budget;
      quick "fixed-point nan guard" test_fixed_point_nan_guard;
      quick "tatonnement damping retry" test_tatonnement_damping_retry;
      quick "system typed error" test_system_typed_error;
      quick "nash propagates typed error" test_nash_propagates_typed_error;
      quick "poisoned sweep degrades" test_poisoned_sweep_degrades;
      quick "clean sweep" test_clean_sweep_has_no_degraded_rows;
    ] )

let () = Alcotest.run "robust" [ suite ]
