(* Tests for the solve daemon: wire protocol, cache, admission queue,
   journal recovery, the served solve path, and two forked end-to-end
   scenarios (a full request mix and a SIGKILL-mid-load restart on the
   same journal). The forked children never inherit a worker pool: the
   parent process must not create one before forking (domains do not
   survive [fork]), so every in-parent test uses [Server.solve_one] /
   pure module APIs only and the children size their own pool. *)

open Test_helpers
module P = Service.Proto
module Sv = Service.Server
module Cl = Service.Client
module Ca = Service.Cache
module Q = Service.Queue_guard
module J = Service.Journal

let get_ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* string-typed shims over the typed client errors: the assertions in
   this file only ever print them *)
let call client req = Result.map_error Cl.error_to_string (Cl.call client req)
let send client req = Result.map_error Cl.error_to_string (Cl.send client req)

let read_response client =
  Result.map_error Cl.error_to_string (Cl.read_response client)

let fresh_path suffix =
  let path = Filename.temp_file "svc" suffix in
  Sys.remove path;
  path

let mk_market ?(price = 0.8) ?(cap = 0.5) ?(capacity = 1.0)
    ?(names = [| "a"; "b" |]) () =
  let cps =
    Array.map
      (fun name -> Econ.Cp.exponential ~name ~alpha:1.0 ~beta:1.0 ~value:1.2 ())
      names
  in
  { P.capacity; price; cap; cps }

let mk_solved ?(subsidies = [| 0.1; 0.2 |]) () =
  {
    P.subsidies;
    phi = 0.5;
    aggregate = 1.0;
    revenue = 0.8;
    converged = true;
    sweeps = 3;
    kkt_residual = 1e-9;
    cache = P.Cold;
    solve_s = 0.01;
  }

(* Proto: framing round-trips ---------------------------------------- *)

(* Markets hold [Econ.Cp.t] closures, so parsed values cannot be
   compared structurally; the canonical compact rendering can. *)
let roundtrip_request line_of r =
  let line = P.request_to_line r in
  match P.request_of_line line with
  | Ok r' -> Alcotest.(check string) (line_of ^ " round-trips") line (P.request_to_line r')
  | Error reason ->
    Alcotest.failf "%s rejected: %s" line_of (P.reject_to_string reason)

let test_request_roundtrips () =
  roundtrip_request "ping" P.Ping;
  roundtrip_request "shutdown" P.Shutdown;
  roundtrip_request "metrics" (P.Metrics { prefix = "" });
  roundtrip_request "metrics-prefix" (P.Metrics { prefix = "service." });
  roundtrip_request "metrics-prom" (P.Metrics_prom { prefix = "" });
  roundtrip_request "metrics-prom-prefix" (P.Metrics_prom { prefix = "service." });
  roundtrip_request "solve"
    (P.Solve { id = "r1"; market = mk_market (); params = P.no_params });
  roundtrip_request "solve-params"
    (P.Solve
       {
         id = "r2";
         market = mk_market ~names:[| "solo" |] ();
         params = { P.deadline_s = Some 2.5; max_evals = Some 10_000 };
       })

let test_chaos_roundtrips () =
  roundtrip_request "chaos-off" (P.Chaos { mode = None });
  List.iter
    (fun (s : Runner.Chaos.scenario) ->
      roundtrip_request ("chaos-" ^ s.Runner.Chaos.name)
        (P.Chaos { mode = Some s.Runner.Chaos.mode }))
    Runner.Chaos.default_scenarios;
  check_true "off maps to clear" (P.chaos_mode_of_name "off" = Ok None);
  (match P.chaos_mode_of_name "definitely-not-a-mode" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown chaos mode accepted");
  List.iter
    (fun (s : Runner.Chaos.scenario) ->
      match P.chaos_mode_of_name s.Runner.Chaos.name with
      | Ok (Some mode) ->
        Alcotest.(check string) "mode name round-trips" s.Runner.Chaos.name
          (P.chaos_mode_name mode)
      | Ok None -> Alcotest.failf "%s mapped to off" s.Runner.Chaos.name
      | Error msg -> Alcotest.failf "%s: %s" s.Runner.Chaos.name msg)
    Runner.Chaos.default_scenarios

let roundtrip_response label r =
  let line = P.response_to_line r in
  match P.response_of_line line with
  | Ok r' -> Alcotest.(check string) (label ^ " round-trips") line (P.response_to_line r')
  | Error msg -> Alcotest.failf "%s unparsable: %s" label msg

let test_response_roundtrips () =
  roundtrip_response "solved" (P.Solved { id = "r1"; result = mk_solved () });
  roundtrip_response "solved-warm"
    (P.Solved { id = "r2"; result = { (mk_solved ()) with P.cache = P.Warm } });
  roundtrip_response "degraded" (P.Degraded { id = "r3"; reason = "deadline exceeded" });
  roundtrip_response "shed" (P.Shed { id = "r4"; depth = 64; capacity = 64 });
  roundtrip_response "rejected-malformed"
    (P.Rejected { id = None; reason = P.Malformed_frame "bad json" });
  roundtrip_response "rejected-oversized"
    (P.Rejected { id = None; reason = P.Oversized_frame { bytes = 2048; limit = 1024 } });
  roundtrip_response "rejected-market"
    (P.Rejected { id = Some "r5"; reason = P.Bad_market "capacity must be positive" });
  roundtrip_response "rejected-unsupported"
    (P.Rejected { id = None; reason = P.Unsupported "dance" });
  roundtrip_response "rejected-chaos" (P.Rejected { id = Some "r6"; reason = P.Chaos_disabled });
  roundtrip_response "metrics"
    (P.Metrics_snapshot (Obs.Json.Obj [ ("schema", Obs.Json.Str "obs.metrics.v1") ]));
  (* exposition text is newline- and quote-heavy: the frame must escape
     it into a single wire line and round-trip it byte-for-byte *)
  roundtrip_response "prom-text"
    (P.Prom_text "# TYPE a counter\na{l=\"x y\",m=\"q\\\"z\"} 1\n");
  roundtrip_response "chaos-ack" (P.Chaos_ack { mode = "spike" });
  roundtrip_response "pong" P.Pong;
  roundtrip_response "bye" P.Bye

let expect_reject label line check =
  match P.request_of_line line with
  | Ok _ -> Alcotest.failf "%s: accepted" label
  | Error reason ->
    if not (check reason) then
      Alcotest.failf "%s: wrong rejection %s" label (P.reject_to_string reason)

let test_malformed_frames () =
  expect_reject "raw text" "this is not json" (function
    | P.Malformed_frame _ -> true
    | _ -> false);
  expect_reject "truncated json" "{\"type\":\"solve\"" (function
    | P.Malformed_frame _ -> true
    | _ -> false);
  expect_reject "missing type" "{}" (function
    | P.Malformed_frame _ -> true
    | _ -> false);
  expect_reject "unknown type" "{\"type\":\"dance\"}" (function
    | P.Unsupported "dance" -> true
    | _ -> false);
  expect_reject "unknown chaos mode" "{\"type\":\"chaos\",\"mode\":\"nope\"}"
    (function
      | P.Malformed_frame _ -> true
      | _ -> false)

let solve_line_with_market market_json =
  Obs.Json.to_string
    (Obs.Json.Obj
       [ ("type", Obs.Json.Str "solve"); ("id", Obs.Json.Str "bad"); ("market", market_json) ])

let test_bad_markets () =
  let cps_json = Experiments.Market_io.json_of_cps (mk_market ()).P.cps in
  let market ?(capacity = 1.0) ?(price = 0.8) ?(cap = 0.5) ?(cps = cps_json) () =
    Obs.Json.Obj
      [
        ("capacity", Obs.Json.Num capacity);
        ("price", Obs.Json.Num price);
        ("cap", Obs.Json.Num cap);
        ("cps", cps);
      ]
  in
  let bad label json =
    expect_reject label (solve_line_with_market json) (function
      | P.Bad_market _ -> true
      | _ -> false)
  in
  bad "non-positive capacity" (market ~capacity:0. ());
  bad "negative price" (market ~price:(-0.1) ());
  bad "negative cap" (market ~cap:(-1.) ());
  bad "empty population" (market ~cps:(Obs.Json.Arr []) ());
  bad "negative alpha"
    (market
       ~cps:
         (Obs.Json.Arr
            [
              Obs.Json.Obj
                [
                  ("name", Obs.Json.Str "a");
                  ("alpha", Obs.Json.Num (-2.));
                  ("beta", Obs.Json.Num 1.);
                  ("value", Obs.Json.Num 1.);
                ];
            ])
       ());
  (* a valid market on the same code path, as a control *)
  match P.request_of_line (solve_line_with_market (market ())) with
  | Ok (P.Solve { id = "bad"; _ }) -> ()
  | Ok _ -> Alcotest.fail "control market decoded to the wrong request"
  | Error reason -> Alcotest.failf "control market rejected: %s" (P.reject_to_string reason)

let test_oversized_frame () =
  let line = String.make 100 'x' in
  match P.request_of_line ~max_frame_bytes:32 line with
  | Error (P.Oversized_frame { bytes = 100; limit = 32 }) -> ()
  | Error reason -> Alcotest.failf "wrong rejection: %s" (P.reject_to_string reason)
  | Ok _ -> Alcotest.fail "oversized frame accepted"

(* Market_io JSON codec ---------------------------------------------- *)

let test_market_io_json_roundtrip () =
  let cps = (mk_market ~names:[| "alpha"; "beta"; "gamma" |] ()).P.cps in
  let json = Experiments.Market_io.json_of_cps cps in
  match Experiments.Market_io.cps_of_json ~path:"wire" json with
  | Error e -> Alcotest.failf "round-trip failed: %s" (Experiments.Market_io.error_to_string e)
  | Ok cps' ->
    Alcotest.(check int) "population size" (Array.length cps) (Array.length cps');
    Alcotest.(check string) "canonical JSON survives"
      (Obs.Json.to_string json)
      (Obs.Json.to_string (Experiments.Market_io.json_of_cps cps'))

let test_market_io_json_errors () =
  let cp ?(name = "a") ?(alpha = 1.) ?(beta = 1.) ?(value = 1.) () =
    Obs.Json.Obj
      [
        ("name", Obs.Json.Str name);
        ("alpha", Obs.Json.Num alpha);
        ("beta", Obs.Json.Num beta);
        ("value", Obs.Json.Num value);
      ]
  in
  let expect label json ~row ~field =
    match Experiments.Market_io.cps_of_json ~path:"wire" json with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error e ->
      Alcotest.(check (option int)) (label ^ " row") row e.Experiments.Market_io.row;
      Alcotest.(check (option string)) (label ^ " field") field e.Experiments.Market_io.field
  in
  expect "bad alpha in second element"
    (Obs.Json.Arr [ cp (); cp ~name:"b" ~alpha:(-1.) () ])
    ~row:(Some 2) ~field:(Some "alpha");
  expect "duplicate names"
    (Obs.Json.Arr [ cp (); cp () ])
    ~row:(Some 2) ~field:(Some "name");
  expect "not an array" (Obs.Json.Str "nope") ~row:None ~field:None

(* Cache ------------------------------------------------------------- *)

let test_cache_fingerprints () =
  let m = mk_market () in
  Alcotest.(check string) "fingerprint is deterministic" (Ca.fingerprint m)
    (Ca.fingerprint (mk_market ()));
  check_true "price changes the fingerprint"
    (Ca.fingerprint m <> Ca.fingerprint { m with P.price = m.P.price +. 1e-9 });
  Alcotest.(check string) "population ignores the scalar knobs"
    (Ca.population_fingerprint m)
    (Ca.population_fingerprint { m with P.price = 1.4; cap = 0.9; capacity = 3. });
  check_true "population sees the CPs"
    (Ca.population_fingerprint m
    <> Ca.population_fingerprint (mk_market ~names:[| "a"; "b"; "c" |] ()))

let test_cache_hit_and_stats () =
  let cache = Ca.create ~capacity:4 in
  let m = mk_market () in
  let fp = Ca.fingerprint m in
  check_true "miss before store" (Ca.find cache ~fingerprint:fp = None);
  Ca.store cache ~market:m ~fingerprint:fp (mk_solved ());
  (match Ca.find cache ~fingerprint:fp with
  | Some solved ->
    check_true "cache hits are tagged" (solved.P.cache = P.Hit);
    check_close "payload survives" 0.2 solved.P.subsidies.(1)
  | None -> Alcotest.fail "stored entry not found");
  let s = Ca.stats cache in
  Alcotest.(check int) "one hit" 1 s.Ca.hits;
  Alcotest.(check int) "one miss" 1 s.Ca.misses;
  Alcotest.(check int) "size" 1 (Ca.size cache)

let test_cache_lru_eviction () =
  let cache = Ca.create ~capacity:2 in
  let m1 = mk_market ~price:0.1 () in
  let m2 = mk_market ~price:0.2 () in
  let m3 = mk_market ~price:0.3 () in
  let fp m = Ca.fingerprint m in
  Ca.store cache ~market:m1 ~fingerprint:(fp m1) (mk_solved ());
  Ca.store cache ~market:m2 ~fingerprint:(fp m2) (mk_solved ());
  (* touch m1 so m2 is the least recently used *)
  check_true "m1 touchable" (Ca.find cache ~fingerprint:(fp m1) <> None);
  Ca.store cache ~market:m3 ~fingerprint:(fp m3) (mk_solved ());
  Alcotest.(check int) "bounded" 2 (Ca.size cache);
  check_true "LRU entry evicted" (Ca.find cache ~fingerprint:(fp m2) = None);
  check_true "recently used survives" (Ca.find cache ~fingerprint:(fp m1) <> None);
  check_true "newcomer present" (Ca.find cache ~fingerprint:(fp m3) <> None);
  Alcotest.(check int) "one eviction" 1 (Ca.stats cache).Ca.evictions

let test_cache_warm_start () =
  let cache = Ca.create ~capacity:8 in
  let near = mk_market ~price:0.5 () in
  let far = mk_market ~price:1.4 () in
  Ca.store cache ~market:near ~fingerprint:(Ca.fingerprint near)
    (mk_solved ~subsidies:[| 0.11; 0.12 |] ());
  Ca.store cache ~market:far ~fingerprint:(Ca.fingerprint far)
    (mk_solved ~subsidies:[| 0.91; 0.92 |] ());
  (* a query near price 0.55 must seed from the nearest same-population
     entry, and only from the same population *)
  (match Ca.warm_start cache (mk_market ~price:0.55 ()) with
  | Some seed -> check_close "nearest neighbour wins" 0.11 seed.(0)
  | None -> Alcotest.fail "no warm start for a known population");
  (match Ca.warm_start cache (mk_market ~price:1.35 ()) with
  | Some seed -> check_close "distance is over all knobs" 0.91 seed.(0)
  | None -> Alcotest.fail "no warm start for a known population");
  check_true "foreign population never seeds"
    (Ca.warm_start cache (mk_market ~names:[| "x"; "y" |] ()) = None);
  Alcotest.(check int) "warm seeds counted" 2 (Ca.stats cache).Ca.warm_seeds

(* Queue guard ------------------------------------------------------- *)

let test_queue_guard () =
  let q = Q.create ~capacity:2 in
  check_true "admit 1" (Q.admit q "a" = Q.Admitted);
  check_true "admit 2" (Q.admit q "b" = Q.Admitted);
  (match Q.admit q "c" with
  | Q.Refused { depth = 2; capacity = 2 } -> ()
  | Q.Refused { depth; capacity } ->
    Alcotest.failf "refused with depth %d capacity %d" depth capacity
  | Q.Admitted -> Alcotest.fail "admitted beyond capacity");
  Alcotest.(check int) "shed counted" 1 (Q.shed_count q);
  Alcotest.(check (list string)) "FIFO, bounded take" [ "a" ] (Q.take ~max:1 q);
  check_true "freed capacity readmits" (Q.admit q "c" = Q.Admitted);
  Alcotest.(check (list string)) "drain in order" [ "b"; "c" ] (Q.take q);
  Alcotest.(check int) "empty" 0 (Q.depth q)

(* Journal ----------------------------------------------------------- *)

let test_journal_roundtrip () =
  let path = fresh_path ".journal" in
  let j = get_ok (J.open_ ~path ()) in
  get_ok (J.record_received j ~seq:0 ~id:"r0" ~fingerprint:"fp0" ~request_line:"{\"type\":\"ping\"}");
  get_ok (J.record_received j ~seq:1 ~id:"r1" ~fingerprint:"fp1" ~request_line:"line1");
  get_ok (J.record_acked j ~seq:0 ~id:"r0" ~kind:J.Solved);
  J.close j;
  let r = get_ok (J.recover ~path ()) in
  Alcotest.(check int) "no torn lines" 0 r.J.torn_lines;
  Alcotest.(check int) "next seq" 2 r.J.next_seq;
  (match r.J.acked with
  | [ (0, "r0", J.Solved) ] -> ()
  | _ -> Alcotest.fail "acked list wrong");
  (match r.J.pending with
  | [ { J.seq = 1; id = "r1"; request_line = "line1" } ] -> ()
  | _ -> Alcotest.fail "pending list wrong");
  Sys.remove path

let test_journal_missing_file () =
  let r = get_ok (J.recover ~path:(fresh_path ".journal") ()) in
  check_true "empty state" (r.J.pending = [] && r.J.acked = [] && r.J.next_seq = 0)

let test_journal_torn_tail () =
  let path = fresh_path ".journal" in
  let j = get_ok (J.open_ ~path ()) in
  get_ok (J.record_received j ~seq:0 ~id:"r0" ~fingerprint:"fp0" ~request_line:"line0");
  get_ok (J.record_acked j ~seq:0 ~id:"r0" ~kind:J.Degraded);
  get_ok (J.record_received j ~seq:1 ~id:"r1" ~fingerprint:"fp1" ~request_line:"line1");
  J.close j;
  (* a crash mid-append tears the final line *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"ev\":\"acked\",\"se";
  close_out oc;
  let warnings = ref [] in
  let r = get_ok (J.recover ~on_warning:(fun w -> warnings := w :: !warnings) ~path ()) in
  Alcotest.(check int) "torn line counted" 1 r.J.torn_lines;
  check_true "torn line warned" (!warnings <> []);
  (match r.J.acked with
  | [ (0, "r0", J.Degraded) ] -> ()
  | _ -> Alcotest.fail "intact ack lost");
  (match r.J.pending with
  | [ { J.seq = 1; _ } ] -> ()
  | _ -> Alcotest.fail "intact pending record lost");
  Sys.remove path

(* The served solve path -------------------------------------------- *)

let evals_spent () = Obs.Metrics.sum_histograms "solver.evaluations"

let test_solve_one_cache_effectiveness () =
  let cache = Ca.create ~capacity:16 in
  (* asymmetric CPs: the cold solve needs 3+ best-response sweeps, so a
     near-equilibrium seed has sweeps to save (a symmetric population
     already converges in the minimum and shows no difference) *)
  let cps =
    Array.init 4 (fun i ->
        Econ.Cp.exponential
          ~name:(Printf.sprintf "cp%d" i)
          ~alpha:(0.6 +. (0.5 *. float_of_int i))
          ~beta:(0.8 +. (0.3 *. float_of_int i))
          ~value:(0.9 +. (0.4 *. float_of_int i))
          ())
  in
  let market = { P.capacity = 1.0; price = 0.8; cap = 0.5; cps } in
  Numerics.Robust.reset_stats ();
  let cold = get_ok (Sv.solve_one ~cache ~params:P.no_params market) in
  let cold_evals = evals_spent () in
  check_true "first solve is cold" (cold.P.cache = P.Cold);
  check_true "cold solve converged" cold.P.converged;
  check_true "cold solve did real work" (cold_evals > 0.);
  check_close "revenue = price * aggregate" (market.P.price *. cold.P.aggregate)
    cold.P.revenue;
  (* a neighbour in the same population warm-starts and spends fewer
     solver evaluations than the cold solve did *)
  let neighbour = { market with P.price = market.P.price *. 1.001 } in
  Numerics.Robust.reset_stats ();
  let warm = get_ok (Sv.solve_one ~cache ~params:P.no_params neighbour) in
  let warm_evals = evals_spent () in
  check_true "neighbour solve is warm-started" (warm.P.cache = P.Warm);
  check_true "warm solve converged" warm.P.converged;
  check_true
    (Printf.sprintf "warm start is cheaper (%.0f < %.0f evals)" warm_evals cold_evals)
    (warm_evals < cold_evals);
  (* an exact repeat is answered from the cache without any solver work *)
  Numerics.Robust.reset_stats ();
  let hit = get_ok (Sv.solve_one ~cache ~params:P.no_params neighbour) in
  check_true "exact repeat is a hit" (hit.P.cache = P.Hit);
  check_close "a hit costs zero evaluations" 0. (evals_spent ());
  check_close "hit returns the cached equilibrium" warm.P.subsidies.(0)
    hit.P.subsidies.(0)

let test_solve_one_degrades_on_budget () =
  let market = mk_market () in
  let limits = { Runner.Watchdog.deadline_s = None; max_evals = Some 3 } in
  match Sv.solve_one ~limits ~params:P.no_params market with
  | Error reason -> check_true "reason is non-empty" (reason <> "")
  | Ok _ -> Alcotest.fail "a 3-evaluation budget cannot solve an equilibrium"

(* Forked end-to-end daemon ------------------------------------------ *)

let fork_server ?(allow_chaos = false) ?journal ?snapshot ~socket () =
  match Unix.fork () with
  | 0 ->
    (* the child sizes its own pool: domains never survive a fork, so
       the parent must not have created one *)
    Parallel.Runtime.set_jobs 1;
    let base = Sv.default_config ~address:(Sv.Unix_path socket) in
    let cfg =
      {
        base with
        Sv.journal_path = journal;
        snapshot_path = snapshot;
        allow_chaos;
      }
    in
    let code = match Sv.run cfg with Ok () -> 0 | Error _ -> 3 in
    Unix._exit code
  | pid -> pid

let rec connect_retry ?(tries = 200) address =
  match Cl.connect address with
  | Ok client -> client
  | Error e ->
    if tries <= 0 then
      Alcotest.failf "daemon never came up: %s" (Cl.error_to_string e)
    else begin
      Unix.sleepf 0.025;
      connect_retry ~tries:(tries - 1) address
    end

let wait_exit pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> code
  | _, Unix.WSIGNALED s -> Alcotest.failf "daemon killed by signal %d" s
  | _, Unix.WSTOPPED _ -> Alcotest.fail "daemon stopped"

let with_daemon ?allow_chaos ?journal f =
  let socket = fresh_path ".sock" in
  let pid = fork_server ?allow_chaos ?journal ~socket () in
  let finally () =
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
    (try ignore (Unix.waitpid [] pid) with Unix.Unix_error (_, _, _) -> ());
    try Sys.remove socket with Sys_error _ -> ()
  in
  Fun.protect ~finally (fun () -> f ~socket ~pid)

let read_line_fd fd =
  let b = Bytes.create 1 in
  let buf = Buffer.create 256 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> Buffer.contents buf
    | _ ->
      if Bytes.get b 0 = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf (Bytes.get b 0);
        go ()
      end
  in
  go ()

let test_daemon_end_to_end () =
  with_daemon @@ fun ~socket ~pid ->
  let address = Sv.Unix_path socket in
  let client = connect_retry address in
  (match call client P.Ping with
  | Ok P.Pong -> ()
  | Ok r -> Alcotest.failf "ping answered with %s" (P.response_to_line r)
  | Error msg -> Alcotest.failf "ping failed: %s" msg);
  let market = mk_market () in
  (match call client (P.Solve { id = "e1"; market; params = P.no_params }) with
  | Ok (P.Solved { id = "e1"; result }) ->
    check_true "served solve converged" result.P.converged;
    Alcotest.(check int) "one subsidy per CP" 2 (Array.length result.P.subsidies);
    check_true "first solve is cold" (result.P.cache = P.Cold)
  | Ok r -> Alcotest.failf "solve answered with %s" (P.response_to_line r)
  | Error msg -> Alcotest.failf "solve failed: %s" msg);
  (match call client (P.Solve { id = "e2"; market; params = P.no_params }) with
  | Ok (P.Solved { id = "e2"; result }) ->
    check_true "repeat is served from the cache" (result.P.cache = P.Hit)
  | Ok r -> Alcotest.failf "repeat answered with %s" (P.response_to_line r)
  | Error msg -> Alcotest.failf "repeat failed: %s" msg);
  (* chaos frames are rejected unless the daemon opted in *)
  (match call client (P.Chaos { mode = None }) with
  | Ok (P.Rejected { reason = P.Chaos_disabled; _ }) -> ()
  | Ok r -> Alcotest.failf "chaos answered with %s" (P.response_to_line r)
  | Error msg -> Alcotest.failf "chaos failed: %s" msg);
  (match call client (P.Metrics { prefix = "service." }) with
  | Ok (P.Metrics_snapshot json) ->
    check_true "snapshot has series" (Obs.Json.member "series" json <> None)
  | Ok r -> Alcotest.failf "metrics answered with %s" (P.response_to_line r)
  | Error msg -> Alcotest.failf "metrics failed: %s" msg);
  (* a garbage frame on a raw connection gets a typed rejection, and
     the daemon survives it *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let garbage = "this is not json\n" in
  ignore (Unix.write_substring fd garbage 0 (String.length garbage));
  (match P.response_of_line (read_line_fd fd) with
  | Ok (P.Rejected { id = None; reason = P.Malformed_frame _ }) -> ()
  | Ok r -> Alcotest.failf "garbage answered with %s" (P.response_to_line r)
  | Error msg -> Alcotest.failf "garbage answer unparsable: %s" msg);
  Unix.close fd;
  (match call client P.Shutdown with
  | Ok P.Bye -> ()
  | Ok r -> Alcotest.failf "shutdown answered with %s" (P.response_to_line r)
  | Error msg -> Alcotest.failf "shutdown failed: %s" msg);
  Cl.close client;
  Alcotest.(check int) "clean exit" 0 (wait_exit pid)

(* Prometheus exposition: frame and plain HTTP ----------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let read_all_fd fd =
  let buf = Buffer.create 1024 in
  let b = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd b 0 4096 with
    | 0 -> Buffer.contents buf
    | n ->
      Buffer.add_subbytes buf b 0 n;
      go ()
  in
  go ()

let http_get socket target =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" target in
  ignore (Unix.write_substring fd req 0 (String.length req));
  let response = read_all_fd fd in
  Unix.close fd;
  response

let test_daemon_prometheus () =
  with_daemon @@ fun ~socket ~pid ->
  let address = Sv.Unix_path socket in
  let client = connect_retry address in
  let market = mk_market () in
  (match call client (P.Solve { id = "p1"; market; params = P.no_params }) with
  | Ok (P.Solved _) -> ()
  | Ok r -> Alcotest.failf "solve answered with %s" (P.response_to_line r)
  | Error msg -> Alcotest.failf "solve failed: %s" msg);
  (* exposition over the framed protocol *)
  (match call client (P.Metrics_prom { prefix = "service." }) with
  | Ok (P.Prom_text text) ->
    check_true "solved counter exposed" (contains text "service_requests_solved");
    check_true "TYPE comments present"
      (contains text "# TYPE service_requests_solved counter");
    check_true "latency histogram buckets"
      (contains text "service_solve_latency_s_bucket{le=");
    check_true "+Inf bucket closes the histogram" (contains text {|le="+Inf"|});
    check_true "histogram count" (contains text "service_solve_latency_s_count");
    check_true "journal gauge exposed even without a journal"
      (contains text "service_journal_pending")
  | Ok r -> Alcotest.failf "metrics_prom answered with %s" (P.response_to_line r)
  | Error msg -> Alcotest.failf "metrics_prom failed: %s" msg);
  (* the loadgen convenience wrapper sees the same text *)
  (match Service.Loadgen.fetch_prom ~prefix:"service." address with
  | Ok text -> check_true "fetch_prom works" (contains text "service_requests_solved")
  | Error msg -> Alcotest.failf "fetch_prom failed: %s" msg);
  (* the same exposition over plain HTTP on the same socket *)
  let response = http_get socket "/metrics" in
  check_true "HTTP 200"
    (String.length response >= 12 && String.sub response 0 12 = "HTTP/1.0 200");
  check_true "prometheus content type"
    (contains response "text/plain; version=0.0.4");
  check_true "body has the latency histogram"
    (contains response "service_solve_latency_s");
  check_true "body has the solved counter"
    (contains response "service_requests_solved");
  let missing = http_get socket "/nope" in
  check_true "unknown path is 404"
    (String.length missing >= 12 && String.sub missing 0 12 = "HTTP/1.0 404");
  (* the daemon survives the HTTP detours and still speaks frames *)
  (match call client P.Shutdown with
  | Ok P.Bye -> ()
  | Ok r -> Alcotest.failf "shutdown answered with %s" (P.response_to_line r)
  | Error msg -> Alcotest.failf "shutdown failed: %s" msg);
  Cl.close client;
  Alcotest.(check int) "clean exit" 0 (wait_exit pid)

(* Loadgen CSV artifact ---------------------------------------------- *)

let test_loadgen_csv_table () =
  let report =
    {
      Service.Loadgen.sent = 10;
      solved = 8;
      degraded = 1;
      shed = 1;
      rejected = 0;
      other = 0;
      chaos_toggles = 2;
      chaos_sent = [ ("off", 1); ("spike", 1) ];
      unanswered = 0;
      errors = [];
      wall_s = 1.5;
      latency = None;
      per_shard = [];
      failovers = 0;
      retries = 0;
      recovered = 0;
    }
  in
  let csv = Report.Table.to_csv_string (Service.Loadgen.csv_table report) in
  check_true "sent row" (contains csv "sent,10");
  check_true "shed row" (contains csv "shed,1");
  check_true "chaos mode rows" (contains csv "chaos.spike,1");
  check_true "no latency rows without observations"
    (not (contains csv "latency.count"));
  Obs.Metrics.reset ~prefix:"t.lg." ();
  let h = Obs.Metrics.histogram "t.lg.h" in
  List.iter (Obs.Metrics.observe h) [ 0.01; 0.02; 0.04 ];
  let s = Obs.Metrics.summarize h in
  let csv2 =
    Report.Table.to_csv_string
      (Service.Loadgen.csv_table { report with Service.Loadgen.latency = Some s })
  in
  check_true "latency count row" (contains csv2 "latency.count,3");
  check_true "latency quantile rows" (contains csv2 "latency.p99_s,");
  check_true "latency sum row" (contains csv2 "latency.sum_s,")

(* SIGKILL mid-load, restart on the same journal --------------------- *)

(* Count ack events per seq straight off the journal file: [recover]
   collapses duplicates by design, the at-most-once assertion must not. *)
let ack_counts path =
  let counts = Hashtbl.create 64 in
  let ic = open_in path in
  (try
     while true do
       let line = input_line ic in
       match Obs.Json.of_string line with
       | json ->
         if Obs.Json.member "ev" json = Some (Obs.Json.Str "acked") then (
           match Option.bind (Obs.Json.member "seq" json) Obs.Json.to_float with
           | Some seq ->
             let seq = int_of_float seq in
             Hashtbl.replace counts seq (1 + Option.value ~default:0 (Hashtbl.find_opt counts seq))
           | None -> ())
       | exception Obs.Json.Parse_error _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  counts

let test_kill_and_restart_journal () =
  let journal = fresh_path ".journal" in
  let socket1 = fresh_path ".sock" in
  let pid1 = fork_server ~journal ~socket:socket1 () in
  let client = connect_retry (Sv.Unix_path socket1) in
  let rng = Numerics.Rng.create 5L in
  let n = 120 in
  for i = 0 to n - 1 do
    let market = Service.Loadgen.random_market rng in
    get_ok
      (send client (P.Solve { id = Printf.sprintf "k%d" i; market; params = P.no_params }))
  done;
  (* one response read = at least one journaled ack; then kill -9 with
     the bulk of the load still queued *)
  (match read_response client with
  | Ok (P.Solved _ | P.Degraded _ | P.Shed _) -> ()
  | Ok r -> Alcotest.failf "unexpected first answer %s" (P.response_to_line r)
  | Error msg -> Alcotest.failf "no first answer: %s" msg);
  Unix.kill pid1 Sys.sigkill;
  ignore (Unix.waitpid [] pid1);
  Cl.close client;
  (try Sys.remove socket1 with Sys_error _ -> ());
  let before = get_ok (J.recover ~path:journal ()) in
  check_true "the kill left un-acked work" (before.J.pending <> []);
  check_true "some work was acked before the kill" (before.J.acked <> []);
  let received_seqs =
    List.sort_uniq compare
      (List.map (fun (p : J.pending) -> p.J.seq) before.J.pending
      @ List.map (fun (seq, _, _) -> seq) before.J.acked)
  in
  (* restart on the same journal: recovery replays every pending
     request before the listener opens, so connect = replay done *)
  let socket2 = fresh_path ".sock" in
  let pid2 = fork_server ~journal ~socket:socket2 () in
  let client2 = connect_retry (Sv.Unix_path socket2) in
  (match call client2 P.Shutdown with
  | Ok P.Bye -> ()
  | Ok r -> Alcotest.failf "shutdown answered with %s" (P.response_to_line r)
  | Error msg -> Alcotest.failf "shutdown failed: %s" msg);
  Cl.close client2;
  Alcotest.(check int) "clean exit after recovery" 0 (wait_exit pid2);
  (try Sys.remove socket2 with Sys_error _ -> ());
  let after = get_ok (J.recover ~path:journal ()) in
  check_true "nothing left pending" (after.J.pending = []);
  let acked_seqs = List.sort compare (List.map (fun (seq, _, _) -> seq) after.J.acked) in
  Alcotest.(check (list int)) "every received request acked, none lost" received_seqs
    acked_seqs;
  (* no request acked twice: acks already journaled must not be
     re-answered by recovery *)
  Hashtbl.iter
    (fun seq count ->
      if count <> 1 then Alcotest.failf "seq %d acked %d times" seq count)
    (ack_counts journal);
  check_true "earlier acks all survive"
    (List.for_all
       (fun (seq, _, _) -> List.exists (fun (s, _, _) -> s = seq) after.J.acked)
       before.J.acked);
  Sys.remove journal

(* Netfault ---------------------------------------------------------- *)

module Nf = Service.Netfault

let test_netfault_determinism () =
  let mk () =
    Nf.create ~drop_conn_p:0.3 ~torn_write_p:0.3 ~delay_read_p:0.3
      ~delay_s:0.001 ~seed:99L ()
  in
  let trace nf =
    List.init 60 (fun i ->
        match i mod 3 with
        | 0 -> (
          match Nf.connect_decision nf ~endpoint:"e" with
          | `Proceed -> "connect"
          | `Refuse -> "refuse")
        | 1 -> (
          match Nf.send_decision nf with
          | `Proceed -> "send"
          | `Torn f -> Printf.sprintf "torn %.6f" f)
        | _ -> (
          match Nf.read_decision nf ~endpoint:"e" with
          | `Proceed -> "read"
          | `Delay d -> Printf.sprintf "delay %.6f" d
          | `Blackhole -> "blackhole"))
  in
  let a = mk () and b = mk () in
  Alcotest.(check (list string)) "same seed, same fault schedule" (trace a) (trace b);
  let sa = Nf.stats a and sb = Nf.stats b in
  check_true "fault counters match" (sa = sb);
  check_true "faults actually injected"
    (sa.Nf.dropped > 0 && sa.Nf.torn > 0 && sa.Nf.delayed > 0);
  (* a blackholed endpoint stalls every read; others are untouched *)
  let bh = Nf.create ~blackhole:[ "x" ] ~seed:1L () in
  (match Nf.read_decision bh ~endpoint:"x" with
  | `Blackhole -> ()
  | `Proceed | `Delay _ -> Alcotest.fail "blackholed endpoint not blackholed");
  (match Nf.read_decision bh ~endpoint:"y" with
  | `Blackhole -> Alcotest.fail "wrong endpoint blackholed"
  | `Proceed | `Delay _ -> ());
  (* probability zero injects nothing *)
  let off = Nf.create ~seed:5L () in
  for _ = 1 to 20 do
    (match Nf.connect_decision off ~endpoint:"e" with
    | `Proceed -> ()
    | `Refuse -> Alcotest.fail "zero-probability drop fired");
    match Nf.send_decision off with
    | `Proceed -> ()
    | `Torn _ -> Alcotest.fail "zero-probability tear fired"
  done

(* Shard ring -------------------------------------------------------- *)

module Sh = Service.Shard

let mk_shard i =
  {
    Sh.name = Printf.sprintf "s%d" i;
    address = Sv.Unix_path (Printf.sprintf "/tmp/fleet-s%d.sock" i);
    health = Sh.Up;
    failures = 0;
  }

let mk_fleet n = get_ok (Sh.make (List.init n mk_shard))

let route_names t key =
  List.map (fun (s : Sh.shard) -> s.Sh.name) (Sh.route t ~key)

let test_shard_ring () =
  let t = mk_fleet 3 in
  let r = route_names t "fp-abc" in
  Alcotest.(check int) "every shard appears exactly once" 3
    (List.length (List.sort_uniq compare r));
  Alcotest.(check (list string)) "routing is deterministic" r
    (route_names t "fp-abc");
  let owners =
    List.sort_uniq compare
      (List.init 64 (fun i ->
           match Sh.route t ~key:(Printf.sprintf "key%d" i) with
           | s :: _ -> s.Sh.name
           | [] -> "none"))
  in
  Alcotest.(check (list string)) "keys spread over every owner"
    [ "s0"; "s1"; "s2" ] owners;
  (match Sh.find t "s1" with
  | None -> Alcotest.fail "find lost a shard"
  | Some s ->
    Sh.mark_failed s;
    check_true "one failure is suspect" (s.Sh.health = Sh.Suspect);
    Sh.mark_failed s;
    check_true "two failures is down" (s.Sh.health = Sh.Down);
    Sh.mark_ok s;
    check_true "success resets health" (s.Sh.health = Sh.Up && s.Sh.failures = 0));
  check_true "empty fleet rejected" (Result.is_error (Sh.make []));
  check_true "duplicate names rejected"
    (Result.is_error (Sh.make [ mk_shard 0; mk_shard 0 ]))

let test_shard_manifest_roundtrip () =
  let t = mk_fleet 3 in
  let path = fresh_path ".fleet.json" in
  get_ok (Sh.save_manifest ~path t);
  let t' = get_ok (Sh.load_manifest ~path ()) in
  Alcotest.(check (list string)) "shards survive"
    (List.map (fun (s : Sh.shard) -> s.Sh.name) (Sh.shards t))
    (List.map (fun (s : Sh.shard) -> s.Sh.name) (Sh.shards t'));
  (* the reloaded ring routes every key identically: a client holding
     the manifest agrees with the serve-fleet process that wrote it *)
  for i = 0 to 19 do
    let key = Printf.sprintf "k%d" i in
    Alcotest.(check (list string)) (key ^ " routes identically")
      (route_names t key) (route_names t' key)
  done;
  Sys.remove path;
  (match Sh.address_of_string "tcp:127.0.0.1:9000" with
  | Ok (Sv.Tcp { host = "127.0.0.1"; port = 9000 }) -> ()
  | Ok _ | Error _ -> Alcotest.fail "tcp address did not parse");
  check_true "unix address parses"
    (Sh.address_of_string "unix:/tmp/x.sock" = Ok (Sv.Unix_path "/tmp/x.sock"));
  check_true "garbage address rejected" (Result.is_error (Sh.address_of_string "zap"));
  check_true "bad tcp port rejected"
    (Result.is_error (Sh.address_of_string "tcp:h:zap"));
  check_true "missing manifest is an error"
    (Result.is_error (Sh.load_manifest ~path:(fresh_path ".fleet.json") ()))

(* Cache snapshot ---------------------------------------------------- *)

let test_cache_snapshot_roundtrip () =
  let path = fresh_path ".snapshot" in
  let cache = Ca.create ~capacity:8 in
  let markets =
    List.init 3 (fun i -> mk_market ~price:(0.5 +. (0.1 *. float_of_int i)) ())
  in
  List.iter
    (fun m ->
      Ca.store cache ~market:m ~fingerprint:(Ca.fingerprint m) (mk_solved ()))
    markets;
  Alcotest.(check int) "three entries saved" 3 (get_ok (Ca.save cache ~path));
  let fresh = Ca.create ~capacity:8 in
  let loaded = get_ok (Ca.load_into fresh ~path) in
  Alcotest.(check int) "three entries loaded" 3 loaded.Ca.entries;
  check_true "snapshot age is sane"
    (loaded.Ca.age_s >= 0. && loaded.Ca.age_s < 3600.);
  List.iter
    (fun m ->
      match Ca.find fresh ~fingerprint:(Ca.fingerprint m) with
      | Some solved ->
        check_true "reloaded entries serve as hits" (solved.P.cache = P.Hit);
        check_close "payload survives" 0.2 solved.P.subsidies.(1)
      | None -> Alcotest.fail "loaded entry not found")
    markets;
  check_true "population index rebuilt for warm starts"
    (Ca.warm_start fresh (mk_market ~price:0.55 ()) <> None);
  (* a missing file is a cold start, not an error *)
  let l = get_ok (Ca.load_into (Ca.create ~capacity:4) ~path:(fresh_path ".none")) in
  Alcotest.(check int) "missing file loads nothing" 0 l.Ca.entries;
  (* a smaller cache keeps the most recent entries of the snapshot *)
  let small = Ca.create ~capacity:2 in
  let ls = get_ok (Ca.load_into small ~path) in
  Alcotest.(check int) "load reports the full snapshot" 3 ls.Ca.entries;
  Alcotest.(check int) "bounded by capacity" 2 (Ca.size small);
  (match markets with
  | oldest :: newer ->
    check_true "the oldest entry was evicted"
      (Ca.find small ~fingerprint:(Ca.fingerprint oldest) = None);
    List.iter
      (fun m ->
        check_true "newer entries survive"
          (Ca.find small ~fingerprint:(Ca.fingerprint m) <> None))
      newer
  | [] -> assert false);
  (* corruption is a typed error, never a crash *)
  let oc = open_out path in
  output_string oc "{\"schema\":\"cache.v1\",\"entries\":[{\"fp\":1}]}\n";
  close_out oc;
  check_true "corrupt snapshot is an error"
    (Result.is_error (Ca.load_into (Ca.create ~capacity:4) ~path));
  Sys.remove path

(* Journal compaction ------------------------------------------------ *)

let test_journal_compaction () =
  let path = fresh_path ".journal" in
  let j = get_ok (J.open_ ~path ()) in
  for seq = 0 to 4 do
    get_ok
      (J.record_received j ~seq ~id:(Printf.sprintf "r%d" seq)
         ~fingerprint:(Printf.sprintf "fp%d" seq)
         ~request_line:(Printf.sprintf "line%d" seq))
  done;
  List.iter
    (fun seq ->
      get_ok (J.record_acked j ~seq ~id:(Printf.sprintf "r%d" seq) ~kind:J.Solved))
    [ 0; 1; 3 ];
  let before = J.size_bytes j in
  let c = get_ok (J.compact j) in
  Alcotest.(check int) "pending lines kept" 2 c.J.kept;
  check_true "acked lines dropped" (c.J.dropped >= 3);
  check_true "the file shrank"
    (c.J.bytes_after < c.J.bytes_before && c.J.bytes_before = before);
  Alcotest.(check int) "tracked size agrees" c.J.bytes_after (J.size_bytes j);
  (* the append channel survives the rewrite *)
  get_ok (J.record_received j ~seq:5 ~id:"r5" ~fingerprint:"fp5" ~request_line:"line5");
  get_ok (J.record_acked j ~seq:5 ~id:"r5" ~kind:J.Degraded);
  J.close j;
  let r = get_ok (J.recover ~path ()) in
  Alcotest.(check int) "no torn lines" 0 r.J.torn_lines;
  Alcotest.(check (list int)) "still-pending requests survive" [ 2; 4 ]
    (List.map (fun (p : J.pending) -> p.J.seq) r.J.pending);
  check_true "request lines verbatim"
    (List.map (fun (p : J.pending) -> p.J.request_line) r.J.pending
    = [ "line2"; "line4" ]);
  (* the seq-floor marker: compaction must never allow seq reuse, or a
     recycled seq could be double-acked *)
  Alcotest.(check int) "next_seq stays monotone" 6 r.J.next_seq;
  (match r.J.acked with
  | [ (5, "r5", J.Degraded) ] -> ()
  | _ -> Alcotest.fail "post-compaction ack lost");
  Sys.remove path

(* Pool: breakers and failover --------------------------------------- *)

module Pl = Service.Pool

let pool_config =
  {
    Pl.default_config with
    Pl.retry = Runner.Supervisor.retry ~max_attempts:1 ~backoff_s:0.01 ();
    breaker_threshold = 2;
    breaker_cooldown_s = 60.;
    timeout_s = 5.;
  }

let test_pool_breaker_trips_and_fast_fails () =
  let t =
    get_ok
      (Sh.make
         [
           {
             Sh.name = "dead";
             address = Sv.Unix_path (fresh_path ".sock");
             health = Sh.Up;
             failures = 0;
           };
         ])
  in
  let pool = Pl.create ~config:pool_config t in
  let m = mk_market () in
  let expect_transport label =
    match Pl.solve pool m with
    | Error (Pl.Transport _) -> ()
    | Error e -> Alcotest.failf "%s: wrong error %s" label (Pl.error_to_string e)
    | Ok _ -> Alcotest.failf "%s: solved on a dead fleet" label
  in
  expect_transport "first failure";
  expect_transport "second failure trips the breaker";
  (* breaker open, long cooldown: the pool now fails fast without
     spending a syscall on the dead shard *)
  (match Pl.solve pool m with
  | Error Pl.No_shard_available -> ()
  | Error e -> Alcotest.failf "expected fast-fail, got %s" (Pl.error_to_string e)
  | Ok _ -> Alcotest.fail "solved on a dead fleet");
  (match (Pl.stats pool).Pl.shards with
  | [ d ] ->
    Alcotest.(check string) "breaker open" "open" d.Pl.breaker;
    check_true "trip counted" (d.Pl.trips >= 1);
    check_true "failures counted" (d.Pl.failures >= 2);
    check_true "shard marked down" (d.Pl.health = Sh.Down)
  | _ -> Alcotest.fail "one shard expected");
  Pl.close pool

(* deterministically find a market whose ring owner is [name] *)
let market_owned_by fleet name rng =
  let rec go n =
    if n > 500 then Alcotest.failf "no market routed to %s in 500 draws" name
    else
      let m = Service.Loadgen.random_market rng in
      match Sh.route fleet ~key:(Ca.fingerprint m) with
      | s :: _ when s.Sh.name = name -> m
      | _ -> go (n + 1)
  in
  go 0

let test_pool_fails_over_to_live_shard () =
  with_daemon @@ fun ~socket ~pid ->
  let dead_socket = fresh_path ".sock" in
  let fleet =
    get_ok
      (Sh.make
         [
           { Sh.name = "dead"; address = Sv.Unix_path dead_socket; health = Sh.Up; failures = 0 };
           { Sh.name = "live"; address = Sv.Unix_path socket; health = Sh.Up; failures = 0 };
         ])
  in
  Cl.close (connect_retry (Sv.Unix_path socket));
  let pool = Pl.create ~config:pool_config fleet in
  let rng = Numerics.Rng.create 3L in
  (* a dead-owned key must be answered anyway, by the live replica *)
  let m_dead = market_owned_by fleet "dead" rng in
  (match Pl.solve pool m_dead with
  | Ok (a : Pl.answer) ->
    Alcotest.(check string) "answered by the live shard" "live" a.Pl.shard;
    check_true "counted as a failover" (a.Pl.failovers > 0);
    check_true "the answer is a real equilibrium" a.Pl.solved.P.converged
  | Error e -> Alcotest.failf "dead-owned solve failed: %s" (Pl.error_to_string e));
  (* a live-owned key goes straight to its owner *)
  let m_live = market_owned_by fleet "live" rng in
  (match Pl.solve pool m_live with
  | Ok (a : Pl.answer) ->
    Alcotest.(check string) "owner answers" "live" a.Pl.shard;
    Alcotest.(check int) "no failover needed" 0 a.Pl.failovers
  | Error e -> Alcotest.failf "live-owned solve failed: %s" (Pl.error_to_string e));
  check_true "pool counted the failover" ((Pl.stats pool).Pl.failovers > 0);
  Pl.close pool;
  let client = connect_retry (Sv.Unix_path socket) in
  (match call client P.Shutdown with
  | Ok P.Bye -> ()
  | Ok r -> Alcotest.failf "shutdown answered with %s" (P.response_to_line r)
  | Error msg -> Alcotest.failf "shutdown failed: %s" msg);
  Cl.close client;
  Alcotest.(check int) "clean exit" 0 (wait_exit pid)

(* Snapshot warm restart (forked) ------------------------------------ *)

let shutdown_and_wait ~label client pid =
  (match call client P.Shutdown with
  | Ok P.Bye -> ()
  | Ok r -> Alcotest.failf "%s shutdown answered with %s" label (P.response_to_line r)
  | Error msg -> Alcotest.failf "%s shutdown failed: %s" label msg);
  Cl.close client;
  Alcotest.(check int) (label ^ " clean exit") 0 (wait_exit pid)

let test_snapshot_warm_restart () =
  let snapshot = fresh_path ".snapshot" in
  let socket1 = fresh_path ".sock" in
  let pid1 = fork_server ~snapshot ~socket:socket1 () in
  let client = connect_retry (Sv.Unix_path socket1) in
  let market = mk_market () in
  (match call client (P.Solve { id = "w1"; market; params = P.no_params }) with
  | Ok (P.Solved { result; _ }) ->
    check_true "first solve is cold" (result.P.cache = P.Cold)
  | Ok r -> Alcotest.failf "solve answered with %s" (P.response_to_line r)
  | Error msg -> Alcotest.failf "solve failed: %s" msg);
  shutdown_and_wait ~label:"first daemon" client pid1;
  (try Sys.remove socket1 with Sys_error _ -> ());
  check_true "drain wrote the snapshot" (Sys.file_exists snapshot);
  (* a fresh process on the same snapshot answers the repeated
     fingerprint from the reloaded cache: zero solver evaluations,
     strictly cheaper than the cold solve above *)
  let socket2 = fresh_path ".sock" in
  let pid2 = fork_server ~snapshot ~socket:socket2 () in
  let client2 = connect_retry (Sv.Unix_path socket2) in
  (match call client2 (P.Solve { id = "w2"; market; params = P.no_params }) with
  | Ok (P.Solved { result; _ }) ->
    check_true "repeat after restart is a cache hit" (result.P.cache = P.Hit)
  | Ok r -> Alcotest.failf "repeat answered with %s" (P.response_to_line r)
  | Error msg -> Alcotest.failf "repeat failed: %s" msg);
  (* the restarted daemon's own counters agree *)
  (match Service.Loadgen.fetch_metrics ~prefix:"service.cache." (Sv.Unix_path socket2) with
  | Error msg -> Alcotest.failf "metrics fetch failed: %s" msg
  | Ok json -> (
    let series =
      match Obs.Json.member "series" json with
      | Some (Obs.Json.Arr items) -> items
      | _ -> []
    in
    let value name =
      List.find_map
        (fun s ->
          if Obs.Json.member "name" s = Some (Obs.Json.Str name) then
            Option.bind (Obs.Json.member "value" s) Obs.Json.to_float
          else None)
        series
    in
    match value "service.cache.hits" with
    | Some hits -> check_true "daemon counted the hit" (hits >= 1.)
    | None -> Alcotest.fail "no cache.hits counter"));
  shutdown_and_wait ~label:"restarted daemon" client2 pid2;
  (try Sys.remove socket2 with Sys_error _ -> ());
  Sys.remove snapshot

(* Fleet failover under SIGKILL (forked, 3 shards) ------------------- *)

let test_fleet_failover_sigkill () =
  let sockets = Array.init 3 (fun _ -> fresh_path ".sock") in
  let journals = Array.init 3 (fun _ -> fresh_path ".journal") in
  let pids =
    Array.init 3 (fun i -> fork_server ~journal:journals.(i) ~socket:sockets.(i) ())
  in
  let fleet =
    get_ok
      (Sh.make
         (List.init 3 (fun i ->
              {
                Sh.name = Printf.sprintf "s%d" i;
                address = Sv.Unix_path sockets.(i);
                health = Sh.Up;
                failures = 0;
              })))
  in
  Array.iter (fun s -> Cl.close (connect_retry (Sv.Unix_path s))) sockets;
  let pool =
    Pl.create ~config:{ pool_config with Pl.breaker_cooldown_s = 0.2 } fleet
  in
  let rng = Numerics.Rng.create 17L in
  let solve_ok label m =
    match Pl.solve pool m with
    | Ok (a : Pl.answer) -> a
    | Error e -> Alcotest.failf "%s failed: %s" label (Pl.error_to_string e)
  in
  (* phase 1: healthy fleet; traffic reaches every shard, no failovers *)
  let markets = List.init 24 (fun _ -> Service.Loadgen.random_market rng) in
  let answers1 = List.map (solve_ok "healthy solve") markets in
  Alcotest.(check (list string)) "all three shards answer"
    [ "s0"; "s1"; "s2" ]
    (List.sort_uniq compare (List.map (fun (a : Pl.answer) -> a.Pl.shard) answers1));
  check_true "no failovers while healthy"
    (List.for_all (fun (a : Pl.answer) -> a.Pl.failovers = 0) answers1);
  (* phase 2: SIGKILL s0; the same load must still be fully answered *)
  Unix.kill pids.(0) Sys.sigkill;
  ignore (Unix.waitpid [] pids.(0));
  let answers2 = List.map (solve_ok "post-kill solve") markets in
  check_true "keys owned by the casualty failed over"
    (List.exists (fun (a : Pl.answer) -> a.Pl.failovers > 0) answers2);
  check_true "the dead shard answered nothing"
    (List.for_all (fun (a : Pl.answer) -> a.Pl.shard <> "s0") answers2);
  check_true "pool counted failovers" ((Pl.stats pool).Pl.failovers > 0);
  (match
     List.find_opt
       (fun (d : Pl.shard_stats) -> d.Pl.name = "s0")
       (Pl.stats pool).Pl.shards
   with
  | Some d ->
    check_true "the casualty's breaker tripped" (d.Pl.trips >= 1);
    check_true "its breaker is not closed" (d.Pl.breaker <> "closed")
  | None -> Alcotest.fail "stats lost a shard");
  (* phase 3: restart s0 on the same socket and journal; after the
     cooldown one probe closes the breaker and traffic returns *)
  pids.(0) <- fork_server ~journal:journals.(0) ~socket:sockets.(0) ();
  Cl.close (connect_retry (Sv.Unix_path sockets.(0)));
  Unix.sleepf 0.25;
  Pl.probe pool;
  (match
     List.find_opt
       (fun (d : Pl.shard_stats) -> d.Pl.name = "s0")
       (Pl.stats pool).Pl.shards
   with
  | Some d ->
    Alcotest.(check string) "breaker closed after the probe" "closed" d.Pl.breaker;
    check_true "health recovered" (d.Pl.health = Sh.Up)
  | None -> Alcotest.fail "stats lost a shard");
  let answers3 = List.map (solve_ok "post-restart solve") markets in
  check_true "the restarted shard serves again"
    (List.exists (fun (a : Pl.answer) -> a.Pl.shard = "s0") answers3);
  Pl.close pool;
  (* drain the fleet; every journal must close with nothing pending and
     no seq acked twice — at-most-once per shard across the SIGKILL *)
  Array.iteri
    (fun i socket ->
      let c = connect_retry (Sv.Unix_path socket) in
      shutdown_and_wait ~label:(Printf.sprintf "s%d" i) c pids.(i))
    sockets;
  Array.iter
    (fun journal ->
      let r = get_ok (J.recover ~path:journal ()) in
      check_true "journal drained" (r.J.pending = []);
      Hashtbl.iter
        (fun seq count ->
          if count <> 1 then Alcotest.failf "seq %d acked %d times" seq count)
        (ack_counts journal);
      Sys.remove journal)
    journals;
  Array.iter (fun s -> try Sys.remove s with Sys_error _ -> ()) sockets

let suite =
  ( "service",
    [
      quick "proto: request round-trips" test_request_roundtrips;
      quick "proto: chaos mode round-trips" test_chaos_roundtrips;
      quick "proto: response round-trips" test_response_roundtrips;
      quick "proto: malformed frames are typed rejects" test_malformed_frames;
      quick "proto: market validation" test_bad_markets;
      quick "proto: oversized frame" test_oversized_frame;
      quick "market_io: JSON round-trip" test_market_io_json_roundtrip;
      quick "market_io: JSON errors locate row and field" test_market_io_json_errors;
      quick "cache: fingerprints" test_cache_fingerprints;
      quick "cache: exact hit and stats" test_cache_hit_and_stats;
      quick "cache: LRU eviction" test_cache_lru_eviction;
      quick "cache: warm start picks the nearest neighbour" test_cache_warm_start;
      quick "queue: bounded FIFO admission" test_queue_guard;
      quick "journal: record and recover" test_journal_roundtrip;
      quick "journal: missing file is empty" test_journal_missing_file;
      quick "journal: torn tail is skipped with a warning" test_journal_torn_tail;
      quick "solve_one: cache cuts solver evaluations" test_solve_one_cache_effectiveness;
      quick "solve_one: impossible budget degrades" test_solve_one_degrades_on_budget;
      quick "daemon: end-to-end request mix" test_daemon_end_to_end;
      quick "daemon: prometheus over frame and HTTP" test_daemon_prometheus;
      quick "loadgen: csv artifact shape" test_loadgen_csv_table;
      quick "daemon: SIGKILL mid-load, restart replays the journal"
        test_kill_and_restart_journal;
      quick "netfault: seeded fault schedule is deterministic"
        test_netfault_determinism;
      quick "shard: ring covers and spreads, health transitions" test_shard_ring;
      quick "shard: fleet manifest round-trips the ring"
        test_shard_manifest_roundtrip;
      quick "cache: snapshot save/load round-trip" test_cache_snapshot_roundtrip;
      quick "journal: compaction keeps pending, floors seq"
        test_journal_compaction;
      quick "pool: breaker trips and fails fast on a dead fleet"
        test_pool_breaker_trips_and_fast_fails;
      quick "pool: dead-owned keys fail over to the live replica"
        test_pool_fails_over_to_live_shard;
      quick "daemon: cache snapshot warm-starts a restart"
        test_snapshot_warm_restart;
      quick "fleet: SIGKILL one of three shards, failover and recovery"
        test_fleet_failover_sigkill;
    ] )

let () = Alcotest.run "service" [ suite ]
