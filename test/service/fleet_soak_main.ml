(* The fleet soak: three forked shard daemons (journal + cache snapshot
   each) under a fleet-routed load with client-side network faults
   injected the whole way — dropped connections, torn mid-frame writes,
   delayed reads — plus a scripted SIGKILL of shard s0 at roughly half
   the load and a restart on the same socket/journal/snapshot at three
   quarters. The gate is the fleet robustness contract end to end:
   every request answered (zero unanswered, zero unrecovered transport
   errors), failovers actually exercised, the restarted shard back in
   rotation, every journal drained with no sequence acked twice.
   `dune build @runtest-fleet-soak` runs it; FLEET_SOAK_REQUESTS scales
   the load (default 2_000). *)

module P = Service.Proto
module Sv = Service.Server
module Cl = Service.Client
module Sh = Service.Shard
module J = Service.Journal
module Lg = Service.Loadgen

let requests =
  match
    int_of_string_opt (try Sys.getenv "FLEET_SOAK_REQUESTS" with Not_found -> "")
  with
  | Some n when n > 0 -> n
  | _ -> 2_000

let shards = 3

let failures : string list ref = ref []
let fail fmt = Printf.ksprintf (fun msg -> failures := msg :: !failures) fmt
let check msg cond = if not cond then fail "%s" msg

let fresh_path suffix =
  let path = Filename.temp_file "fleet" suffix in
  Sys.remove path;
  path

let sockets = Array.init shards (fun _ -> fresh_path ".sock")
let journals = Array.init shards (fun _ -> fresh_path ".journal")
let snapshots = Array.init shards (fun _ -> fresh_path ".snapshot")

let fork_shard i =
  match Unix.fork () with
  | 0 ->
    (* one worker domain per shard: three shards share the box, and
       domains never survive the fork anyway *)
    Parallel.Runtime.set_jobs 1;
    let base = Sv.default_config ~address:(Sv.Unix_path sockets.(i)) in
    let cfg =
      {
        base with
        Sv.journal_path = Some journals.(i);
        snapshot_path = Some snapshots.(i);
        seed = Int64.of_int (100 + i);
      }
    in
    let code = match Sv.run cfg with Ok () -> 0 | Error _ -> 3 in
    Unix._exit code
  | pid -> pid

let rec connect_retry tries address =
  match Cl.connect address with
  | Ok client -> Ok client
  | Error e ->
    if tries <= 0 then Error (Cl.error_to_string e)
    else begin
      Unix.sleepf 0.025;
      connect_retry (tries - 1) address
    end

(* ack events per seq straight off the journal file: [recover] collapses
   duplicates by design, the at-most-once assertion must not *)
let ack_counts path =
  let counts = Hashtbl.create 256 in
  let ic = open_in path in
  (try
     while true do
       let line = input_line ic in
       match Obs.Json.of_string line with
       | json ->
         if Obs.Json.member "ev" json = Some (Obs.Json.Str "acked") then (
           match Option.bind (Obs.Json.member "seq" json) Obs.Json.to_float with
           | Some seq ->
             let seq = int_of_float seq in
             Hashtbl.replace counts seq
               (1 + Option.value ~default:0 (Hashtbl.find_opt counts seq))
           | None -> ())
       | exception Obs.Json.Parse_error _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  counts

let () =
  let pids = Array.init shards fork_shard in
  let fleet =
    match
      Sh.make
        (List.init shards (fun i ->
             {
               Sh.name = Printf.sprintf "s%d" i;
               address = Sv.Unix_path sockets.(i);
               health = Sh.Up;
               failures = 0;
             }))
    with
    | Ok t -> t
    | Error msg ->
      prerr_endline ("fleet soak: " ^ msg);
      exit 2
  in
  Array.iter
    (fun s ->
      match connect_retry 400 (Sv.Unix_path s) with
      | Ok c -> Cl.close c
      | Error msg -> fail "shard on %s never came up: %s" s msg)
    sockets;
  let netfault =
    Service.Netfault.create ~drop_conn_p:0.02 ~torn_write_p:0.02
      ~delay_read_p:0.05 ~delay_s:0.002 ~seed:2014L ()
  in
  Printf.printf "fleet soak: %d requests over %d shards, chaos-net %s\n%!"
    requests shards
    (Service.Netfault.describe netfault);
  let killed = ref false and restarted = ref false in
  let on_round ~sent =
    if (not !killed) && sent >= requests / 2 then begin
      killed := true;
      Printf.printf "fleet soak: SIGKILL s0 at %d/%d sent\n%!" sent requests;
      Unix.kill pids.(0) Sys.sigkill;
      ignore (Unix.waitpid [] pids.(0))
    end;
    if !killed && (not !restarted) && sent >= 3 * requests / 4 then begin
      restarted := true;
      Printf.printf "fleet soak: restarting s0 at %d/%d sent\n%!" sent requests;
      pids.(0) <- fork_shard 0;
      match connect_retry 400 (Sv.Unix_path sockets.(0)) with
      | Ok c -> Cl.close c
      | Error msg -> fail "restarted s0 never came up: %s" msg
    end
  in
  let cfg =
    {
      (Lg.default_config ~address:(Sv.Unix_path sockets.(0)) ~requests) with
      Lg.connections = 2;
      burst = 16;
      seed = 2014L;
      timeout_s = 30.;
      fleet = Some fleet;
      netfault = Some netfault;
    }
  in
  (match Lg.run ~on_event:print_endline ~on_round cfg with
  | Error msg -> fail "fleet loadgen failed: %s" msg
  | Ok report ->
    print_endline (Lg.report_to_string report);
    List.iter
      (fun (name, (s : Lg.shard_load)) ->
        Printf.printf "  shard %s: %d sent, %d answered, %.1f req/s\n" name
          s.Lg.sent s.Lg.answered s.Lg.req_s)
      report.Lg.per_shard;
    let csv = Filename.concat (Filename.get_temp_dir_name ()) "fleet_soak.csv" in
    (try
       Lg.write_csv ~path:csv report;
       Printf.printf "fleet report written to %s\n" csv
     with Sys_error msg -> fail "fleet csv write failed: %s" msg);
    check "the kill was actually scripted" !killed;
    check "the restart was actually scripted" !restarted;
    check "full load was sent" (report.Lg.sent = requests);
    check "zero unanswered requests" (report.Lg.unanswered = 0);
    check "every request solved, degraded or shed" (Lg.report_ok report);
    check "transport faults were recovered through the pool"
      (report.Lg.recovered > 0 || report.Lg.failovers > 0);
    if report.Lg.errors <> [] then
      List.iter (fail "unrecovered transport error: %s") report.Lg.errors);
  (* drain the fleet: every shard still alive answers Shutdown *)
  Array.iteri
    (fun i socket ->
      match connect_retry 40 (Sv.Unix_path socket) with
      | Error msg -> fail "s%d shutdown connect failed: %s" i msg
      | Ok client ->
        (match Cl.call client P.Shutdown with
        | Ok P.Bye -> ()
        | Ok r -> fail "s%d shutdown answered %s" i (P.response_to_line r)
        | Error e -> fail "s%d shutdown failed: %s" i (Cl.error_to_string e));
        Cl.close client)
    sockets;
  Array.iteri
    (fun i pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED code -> fail "s%d exited with %d" i code
      | _, Unix.WSIGNALED s -> fail "s%d died on signal %d" i s
      | _, Unix.WSTOPPED s -> fail "s%d stopped on signal %d" i s
      | exception Unix.Unix_error (_, _, _) -> ())
    pids;
  (* at-most-once per shard across the SIGKILL: journals drained, no
     sequence acked twice, and the restarted shard left a snapshot *)
  Array.iteri
    (fun i journal ->
      match J.recover ~path:journal () with
      | Error msg -> fail "s%d journal unreadable: %s" i msg
      | Ok r ->
        check (Printf.sprintf "s%d journal drained" i) (r.J.pending = []);
        Hashtbl.iter
          (fun seq count ->
            if count <> 1 then fail "s%d seq %d acked %d times" i seq count)
          (ack_counts journal))
    journals;
  check "the restarted shard saved a snapshot" (Sys.file_exists snapshots.(0));
  Array.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) sockets;
  Array.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) journals;
  Array.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) snapshots;
  match !failures with
  | [] ->
    Printf.printf "fleet soak OK: %d requests, one SIGKILL, one restart\n" requests;
    exit 0
  | failures ->
    List.iter (Printf.eprintf "fleet soak FAIL: %s\n") (List.rev failures);
    exit 1
