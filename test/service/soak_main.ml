(* The service soak: a forked daemon under >=10k randomized solve
   requests with every chaos mode injected mid-flight, asserting the
   robustness contract end to end — the daemon never crashes, every
   request is answered (solved, degraded or shed — never dropped, never
   rejected), the admission queue stays bounded, latency percentiles
   are measurable, shutdown drains cleanly, and the journal closes with
   nothing pending. `dune build @runtest-soak` runs it; SOAK_REQUESTS
   scales the load (default 10_000). *)

module P = Service.Proto
module Sv = Service.Server
module Cl = Service.Client
module J = Service.Journal

let requests =
  match int_of_string_opt (try Sys.getenv "SOAK_REQUESTS" with Not_found -> "") with
  | Some n when n > 0 -> n
  | _ -> 10_000

let failures : string list ref = ref []
let fail fmt = Printf.ksprintf (fun msg -> failures := msg :: !failures) fmt

let check msg cond = if not cond then fail "%s" msg

let fresh_path suffix =
  let path = Filename.temp_file "soak" suffix in
  Sys.remove path;
  path

let fork_server ~socket ~journal =
  match Unix.fork () with
  | 0 ->
    (* pool size comes from SUBSIDIZATION_JOBS via the runtime default;
       the parent holds no pool, so the fork is domain-safe *)
    let base = Sv.default_config ~address:(Sv.Unix_path socket) in
    let cfg = { base with Sv.journal_path = Some journal; allow_chaos = true } in
    let code = match Sv.run cfg with Ok () -> 0 | Error _ -> 3 in
    Unix._exit code
  | pid -> pid

let rec connect_retry tries address =
  match Cl.connect address with
  | Ok client -> Ok client
  | Error e ->
    if tries <= 0 then Error (Cl.error_to_string e)
    else begin
      Unix.sleepf 0.025;
      connect_retry (tries - 1) address
    end

(* obs.metrics.v1 accessors ------------------------------------------ *)

let series_named json name =
  match Option.bind (Obs.Json.member "series" json) Obs.Json.to_list with
  | None -> None
  | Some series ->
    List.find_opt (fun s -> Obs.Json.member "name" s = Some (Obs.Json.Str name)) series

let series_float json name field =
  Option.bind (series_named json name) (fun s ->
      Option.bind (Obs.Json.member field s) Obs.Json.to_float)

let () =
  let socket = fresh_path ".sock" in
  let journal = fresh_path ".journal" in
  let address = Sv.Unix_path socket in
  let pid = fork_server ~socket ~journal in
  (match connect_retry 400 address with
  | Error msg -> fail "daemon never came up: %s" msg
  | Ok probe ->
    Cl.close probe;
    let cfg =
      {
        (Service.Loadgen.default_config ~address ~requests) with
        Service.Loadgen.connections = 4;
        burst = 32;
        seed = 2014L;
        chaos_every = Some 50;
        deadline_s = Some 2.;
        timeout_s = 120.;
      }
    in
    (match Service.Loadgen.run ~on_event:print_endline cfg with
    | Error msg -> fail "loadgen failed: %s" msg
    | Ok report ->
      print_endline (Service.Loadgen.report_to_string report);
      (* the full report — counts, chaos toggles per mode, latency
         distribution — as a CSV artifact next to the soak log *)
      let csv = Filename.concat (Filename.get_temp_dir_name ()) "soak_loadgen.csv" in
      (try
         Service.Loadgen.write_csv ~path:csv report;
         Printf.printf "loadgen report written to %s\n" csv
       with Sys_error msg -> fail "loadgen csv write failed: %s" msg);
      check "every request solved, degraded or shed"
        (Service.Loadgen.report_ok report);
      check "full load was sent" (report.Service.Loadgen.sent = requests);
      check "chaos actually toggled mid-flight"
        (report.Service.Loadgen.chaos_toggles > 0);
      if report.Service.Loadgen.errors <> [] then
        List.iter (fail "transport error: %s") report.Service.Loadgen.errors);
    (* latency, queue bound and cache effectiveness are measurable in
       the daemon's own metrics *)
    (match Service.Loadgen.fetch_metrics ~prefix:"service." address with
    | Error msg -> fail "metrics fetch failed: %s" msg
    | Ok json ->
      (match series_float json "service.solve.latency_s" "count" with
      | Some count when count > 0. -> ()
      | _ -> fail "no solve latency observations");
      (match series_float json "service.solve.latency_s" "p99" with
      | Some p99 when Float.is_finite p99 && p99 >= 0. ->
        Printf.printf "solve latency p99: %.1f ms\n" (1000. *. p99)
      | _ -> fail "no finite latency p99");
      (match series_float json "service.queue.depth" "value" with
      | Some depth when depth <= 64. -> ()
      | Some depth -> fail "queue depth %.0f above its bound" depth
      | None -> fail "no queue depth gauge");
      (match
         (series_float json "service.cache.hits" "value",
          series_float json "service.cache.warm_seeds" "value")
       with
      | Some hits, Some warm ->
        Printf.printf "cache: %.0f hits, %.0f warm seeds\n" hits warm;
        check "the reuse-heavy load hits the cache" (hits +. warm > 0.)
      | _ -> fail "cache counters missing"));
    (* graceful drain, clean exit, empty journal *)
    (match connect_retry 1 address with
    | Error msg -> fail "shutdown connect failed: %s" msg
    | Ok client ->
      (match Cl.call client P.Shutdown with
      | Ok P.Bye -> ()
      | Ok r -> fail "shutdown answered with %s" (P.response_to_line r)
      | Error e -> fail "shutdown failed: %s" (Cl.error_to_string e));
      Cl.close client));
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED code -> fail "daemon exited with %d" code
  | _, Unix.WSIGNALED s -> fail "daemon died on signal %d" s
  | _, Unix.WSTOPPED s -> fail "daemon stopped on signal %d" s);
  (match J.recover ~path:journal () with
  | Error msg -> fail "journal unreadable after drain: %s" msg
  | Ok r ->
    check "journal drained" (r.J.pending = []);
    Printf.printf "journal: %d acked, %d torn\n" (List.length r.J.acked) r.J.torn_lines);
  (try Sys.remove journal with Sys_error _ -> ());
  (try Sys.remove socket with Sys_error _ -> ());
  match !failures with
  | [] ->
    Printf.printf "soak OK: %d requests\n" requests;
    exit 0
  | failures ->
    List.iter (Printf.eprintf "soak FAIL: %s\n") (List.rev failures);
    exit 1
