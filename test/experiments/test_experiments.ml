open Test_helpers

let test_registry () =
  Alcotest.(check int) "fifteen experiments" 15 (List.length Experiments.Registry.all);
  check_true "fig4 present" (Experiments.Registry.find "fig4" <> None);
  check_true "unknown absent" (Experiments.Registry.find "fig99" = None);
  check_raises_invalid "find_exn raises" (fun () ->
      Experiments.Registry.find_exn "fig99" |> ignore);
  check_true "ids in paper order"
    (Experiments.Registry.ids
    = [ "fig4"; "fig5"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "verify"; "capacity";
        "dynamics"; "duopoly"; "robustness"; "ablation"; "longrun"; "surplus" ])

let run id =
  let e = Experiments.Registry.find_exn id in
  e.Experiments.Common.run ()

let check_outcome id (outcome : Experiments.Common.outcome) =
  Alcotest.(check string) "id matches" id outcome.Experiments.Common.id;
  check_true "has tables" (outcome.Experiments.Common.tables <> []);
  List.iter
    (fun c ->
      check_true
        (Printf.sprintf "%s/%s: %s" id c.Subsidization.Theorems.name
           c.Subsidization.Theorems.detail)
        c.Subsidization.Theorems.passed)
    outcome.Experiments.Common.shape_checks

let test_fig4 () = check_outcome "fig4" (run "fig4")
let test_fig5 () = check_outcome "fig5" (run "fig5")
let test_fig7 () = check_outcome "fig7" (run "fig7")
let test_fig8 () = check_outcome "fig8" (run "fig8")
let test_fig9 () = check_outcome "fig9" (run "fig9")
let test_fig10 () = check_outcome "fig10" (run "fig10")
let test_fig11 () = check_outcome "fig11" (run "fig11")

let test_fig4_series_accessor () =
  let theta, revenue = Experiments.Fig4.series ~points:9 () in
  Alcotest.(check int) "custom grid" 9 (Report.Series.length theta);
  check_true "revenue ~ p * theta"
    (let p = theta.Report.Series.xs.(4) in
     Float.abs (revenue.Report.Series.ys.(4) -. (p *. theta.Report.Series.ys.(4)))
     < 1e-9)

let test_fig8_panel_accessor () =
  let panel = Experiments.Fig8_11.panel ~quantity:`Subsidy ~cp:"a5b2v1" () in
  Alcotest.(check int) "five policy curves" 5 (List.length panel);
  (match panel with
  | q0 :: _ ->
    Array.iter (fun y -> check_close "q=0 row is zero" 0. y) q0.Report.Series.ys
  | [] -> Alcotest.fail "no curves");
  match Experiments.Fig8_11.panel ~quantity:`Subsidy ~cp:"nope" () with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ()

let test_save_writes_csv () =
  let outcome = run "fig4" in
  let dir = Filename.temp_file "exp_out" "" in
  Sys.remove dir;
  Experiments.Common.save outcome ~dir;
  let path = Filename.concat (Filename.concat dir "fig4") "theta_revenue.csv" in
  check_true "csv exists" (Sys.file_exists path);
  let rows = Report.Csv.read ~path in
  check_true "header row" (List.hd rows = [ "p"; "theta"; "revenue" ]);
  Alcotest.(check int) "41 data rows" 42 (List.length rows)

let test_shape_summary_format () =
  let outcome = run "fig4" in
  let summary = Experiments.Common.shape_summary outcome in
  check_true "mentions id" (String.length summary > 4 && String.sub summary 0 4 = "fig4")


let parse_ok text =
  match Experiments.Market_io.cps_of_string ~path:"<mem>" text with
  | Ok cps -> cps
  | Error e -> Alcotest.failf "expected Ok: %s" (Experiments.Market_io.error_to_string e)

let test_market_io_roundtrip () =
  let text =
    "name,alpha,beta,value,m0,l0\nvideo,1.5,4,0.6,1,1\nnews,5,2,0.4,1.5,0.5\n"
  in
  let cps = parse_ok text in
  Alcotest.(check int) "two CPs" 2 (Array.length cps);
  Alcotest.(check string) "name" "video" cps.(0).Econ.Cp.name;
  check_close "value" 0.4 cps.(1).Econ.Cp.value;
  check_close ~tol:1e-12 "m0 respected" 1.5 (Econ.Cp.population cps.(1) 0.);
  (* write out and re-read *)
  let path = Filename.temp_file "market" ".csv" in
  Experiments.Market_io.write_cps ~path cps;
  let reread = Experiments.Market_io.cps_of_csv path in
  Sys.remove path;
  match reread with
  | Error e -> Alcotest.failf "re-read failed: %s" (Experiments.Market_io.error_to_string e)
  | Ok reread ->
    Array.iteri
      (fun i cp ->
        check_close ~tol:1e-12 "roundtrip population"
          (Econ.Cp.population cps.(i) 0.3)
          (Econ.Cp.population cp 0.3))
      reread

(* property: write_cps o cps_of_csv is the identity on every CP field,
   for arbitrary positive parameters (including awkward magnitudes) *)
let test_market_io_property_roundtrip =
  let cp_gen =
    QCheck2.Gen.(
      map
        (fun ((alpha, beta), (value, (m0, l0))) -> (alpha, beta, value, m0, l0))
        (pair
           (pair (float_range 1e-3 1e3) (float_range 1e-3 1e3))
           (pair (float_range 0. 1e3) (pair (float_range 1e-3 1e3) (float_range 1e-3 1e3)))))
  in
  let arb = QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 8) cp_gen in
  prop ~count:50 "market io: write/parse round-trip" arb (fun params ->
      let cps =
        Array.of_list
          (List.mapi
             (fun i (alpha, beta, value, m0, l0) ->
               Econ.Cp.exponential ~name:(Printf.sprintf "cp%d" i) ~m0 ~l0 ~alpha
                 ~beta ~value ())
             params)
      in
      let path = Filename.temp_file "market_prop" ".csv" in
      Experiments.Market_io.write_cps ~path cps;
      let reread = Experiments.Market_io.cps_of_csv path in
      Sys.remove path;
      match reread with
      | Error e -> QCheck2.Test.fail_report (Experiments.Market_io.error_to_string e)
      | Ok cps' ->
        Array.length cps = Array.length cps'
        && Array.for_all2
             (fun (a : Econ.Cp.t) (b : Econ.Cp.t) ->
               a.Econ.Cp.name = b.Econ.Cp.name
               && Float.equal a.Econ.Cp.value b.Econ.Cp.value
               && Float.equal (Econ.Cp.population a 0.37) (Econ.Cp.population b 0.37)
               && Float.equal (Econ.Cp.rate a 0.61) (Econ.Cp.rate b 0.61))
             cps cps')

(* malformed-input corpus: every rejection is a located Error, never an
   exception, and the location points at the offending row/field *)
let expect_error ~describing:(row, field) text =
  match Experiments.Market_io.cps_of_string ~path:"<mem>" text with
  | Ok _ -> Alcotest.failf "expected Error for %S" text
  | Error e ->
    check_true
      (Printf.sprintf "row located in %s" (Experiments.Market_io.error_to_string e))
      (e.Experiments.Market_io.row = row);
    check_true
      (Printf.sprintf "field located in %s" (Experiments.Market_io.error_to_string e))
      (e.Experiments.Market_io.field = field)

let test_market_io_errors () =
  expect_error ~describing:(Some 1, None) "wrong,header\nrow,1,2,3";
  expect_error ~describing:(None, None) "name,alpha,beta,value";
  expect_error ~describing:(None, None) "";
  expect_error ~describing:(Some 2, Some "alpha") "name,alpha,beta,value\ncp,notanumber,2,0.5";
  expect_error ~describing:(Some 2, Some "alpha") "name,alpha,beta,value\ncp,-1,2,0.5";
  expect_error ~describing:(Some 2, Some "beta") "name,alpha,beta,value\ncp,1,0,0.5";
  expect_error ~describing:(Some 2, Some "value") "name,alpha,beta,value\ncp,1,2,-0.5";
  expect_error ~describing:(Some 2, Some "value") "name,alpha,beta,value\ncp,1,2,nan";
  expect_error ~describing:(Some 2, Some "alpha") "name,alpha,beta,value\ncp,inf,2,0.5";
  expect_error ~describing:(Some 3, None) "name,alpha,beta,value\ncp,1,2,0.5\nshort,1";
  expect_error ~describing:(Some 2, None) "name,alpha,beta,value\n,1,2,0.5";
  expect_error ~describing:(Some 2, Some "m0") "name,alpha,beta,value,m0\ncp,1,2,0.5,0";
  (* duplicate names: reported at the second use, naming the first *)
  expect_error ~describing:(Some 3, Some "name")
    "name,alpha,beta,value\ncp,1,2,0.5\ncp,3,4,0.5";
  (* malformed CSV (unterminated quote) surfaces as a located Error *)
  (match
     Experiments.Market_io.cps_of_string ~path:"<mem>"
       "name,alpha,beta,value\n\"cp,1,2,0.5"
   with
  | Ok _ -> Alcotest.fail "expected Error on unterminated quote"
  | Error _ -> ());
  (* the error string carries path, row and field *)
  match Experiments.Market_io.cps_of_string ~path:"m.csv" "name,alpha,beta,value\ncp,x,2,0.5" with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error e ->
    let s = Experiments.Market_io.error_to_string e in
    check_true "string has path+row+field"
      (s = "m.csv, row 2, field alpha: bad alpha value \"x\"")

let test_market_io_solves () =
  let cps = parse_ok "name,alpha,beta,value\na,2,3,0.8\nb,4,1.5,1.1\n" in
  let sys = Subsidization.System.make ~cps ~capacity:1. () in
  let eq = Subsidization.Policy.nash_at sys ~price:0.5 ~cap:1. in
  check_true "loaded market solves" eq.Subsidization.Nash.converged

let suite =
  ( "experiments",
    [
      quick "registry" test_registry;
      quick "fig4" test_fig4;
      quick "fig5" test_fig5;
      quick "fig7" test_fig7;
      quick "fig8" test_fig8;
      quick "fig9" test_fig9;
      quick "fig10" test_fig10;
      quick "fig11" test_fig11;
      quick "fig4 series accessor" test_fig4_series_accessor;
      quick "fig8 panel accessor" test_fig8_panel_accessor;
      quick "save writes csv" test_save_writes_csv;
      quick "shape summary" test_shape_summary_format;
      quick "market io roundtrip" test_market_io_roundtrip;
      test_market_io_property_roundtrip;
      quick "market io errors" test_market_io_errors;
      quick "market io solves" test_market_io_solves;
    ] )

let () = Alcotest.run "experiments" [ suite; Suite_equivalence.suite ]
