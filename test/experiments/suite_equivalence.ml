open Subsidization
open Test_helpers

(* Continuation-vs-cold-start equivalence: the warm-started fused
   solver (Fast, the default) must reproduce the cold-start legacy
   chain's tables. The two modes take genuinely different numerical
   paths (exact Newton from a predicted guess vs bracketed scan from
   scratch), so cells are certified equal within [cell_tol] rather than
   byte-identical; `--jobs 1` vs `--jobs 4` byte-identity within Fast
   mode is covered by test/parallel on the full experiments.

   The full capacity/duopoly experiments cost minutes in Legacy mode on
   one core, so the certification runs the SAME code paths
   ([Capacity.investment_incentive] and the two [Duopoly] market
   solvers, which produce the experiments' CSV rows) on the paper's
   3-CP Figure-4/5 population instead of the 8-CP one. *)

let cell_tol = 5e-3

let close ~label a b =
  check_true
    (Printf.sprintf "%s: %.6g vs %.6g" label a b)
    (Float.abs (a -. b) <= cell_tol)

let capacity_rows ~jobs mode =
  Parallel.Runtime.set_jobs jobs;
  Numerics.Continuation.with_mode mode (fun () ->
      let sys = Scenario.fig45_system () in
      let plans =
        Capacity.investment_incentive ~pool:(Parallel.Runtime.pool ()) sys
          ~pricing:(Capacity.Optimal_price { p_max = 2.5 }) ~unit_cost:0.15
          ~caps:[| 0.; 0.6 |]
      in
      Array.to_list plans)

let check_plans ~label reference candidate =
  List.iter2
    (fun (a : Capacity.plan) (b : Capacity.plan) ->
      close ~label:(label ^ " mu*") a.Capacity.capacity b.Capacity.capacity;
      close ~label:(label ^ " p*") a.Capacity.price b.Capacity.price;
      close ~label:(label ^ " revenue") a.Capacity.revenue b.Capacity.revenue;
      close ~label:(label ^ " profit") a.Capacity.profit b.Capacity.profit;
      close ~label:(label ^ " phi") a.Capacity.utilization b.Capacity.utilization;
      close ~label:(label ^ " welfare") a.Capacity.welfare b.Capacity.welfare)
    reference candidate

let test_capacity_equivalence () =
  let reference = capacity_rows ~jobs:1 Numerics.Continuation.Legacy in
  let fast1 = capacity_rows ~jobs:1 Numerics.Continuation.Fast in
  let fast4 = capacity_rows ~jobs:4 Numerics.Continuation.Fast in
  Parallel.Runtime.set_jobs 1;
  check_plans ~label:"capacity fast@1 vs legacy" reference fast1;
  check_plans ~label:"capacity fast@4 vs legacy" reference fast4

let duopoly_markets ~jobs mode =
  Parallel.Runtime.set_jobs jobs;
  Numerics.Continuation.with_mode mode (fun () ->
      let duopoly cap =
        Duopoly.make ~cps:(Scenario.fig45_cps ()) ~capacity_a:0.5
          ~capacity_b:0.5 ~cap ()
      in
      [
        Duopoly.monopoly_benchmark (duopoly 1.);
        Duopoly.price_equilibrium (duopoly 1.);
      ])

let check_markets ~label reference candidate =
  List.iter2
    (fun (a : Duopoly.market) (b : Duopoly.market) ->
      close ~label:(label ^ " pA") (fst a.Duopoly.prices) (fst b.Duopoly.prices);
      close ~label:(label ^ " pB") (snd a.Duopoly.prices) (snd b.Duopoly.prices);
      close ~label:(label ^ " RA") (fst a.Duopoly.revenues) (fst b.Duopoly.revenues);
      close ~label:(label ^ " RB") (snd a.Duopoly.revenues) (snd b.Duopoly.revenues);
      close ~label:(label ^ " welfare") a.Duopoly.welfare b.Duopoly.welfare)
    reference candidate

let test_duopoly_equivalence () =
  let reference = duopoly_markets ~jobs:1 Numerics.Continuation.Legacy in
  let fast1 = duopoly_markets ~jobs:1 Numerics.Continuation.Fast in
  let fast4 = duopoly_markets ~jobs:4 Numerics.Continuation.Fast in
  Parallel.Runtime.set_jobs 1;
  check_markets ~label:"duopoly fast@1 vs legacy" reference fast1;
  check_markets ~label:"duopoly fast@4 vs legacy" reference fast4

let test_shared_stats_attribution () =
  (* fig8-11 read one memoized sweep: after any consumer runs, the
     captured shared stats must show the sweep's real solver work, so
     the bench gate has non-zero counters to watch *)
  ignore (Experiments.Common.run (Experiments.Registry.find_exn "fig8"));
  match Experiments.Eq_sweep.shared_stats () with
  | None -> Alcotest.fail "sweep ran but no shared stats captured"
  | Some s ->
    check_true "root calls attributed" (s.Experiments.Eq_sweep.root_calls > 0);
    check_true "objective evaluations attributed"
      (s.Experiments.Eq_sweep.objective_evaluations > 0.);
    check_true "AD passes attributed" (s.Experiments.Eq_sweep.deriv_ad > 0.)

let suite =
  ( "continuation-equivalence",
    [
      quick "capacity plans across modes" test_capacity_equivalence;
      quick "duopoly markets across modes" test_duopoly_equivalence;
      quick "eq_sweep shared-stats attribution" test_shared_stats_attribution;
    ] )
