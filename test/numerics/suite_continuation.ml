open Numerics
open Test_helpers

(* root_fused targets the DECREASING crossing of a marginal-payoff
   objective: u > 0 means "more is better", u < 0 "less is better". *)

let quadratic_marginal m x = (-2. *. (x -. m), -2.)

let test_fused_interior () =
  match Robust.root_fused (quadratic_marginal 1.3) ~x0:0.1 ~lo:0. ~hi:4. with
  | Ok p ->
    check_close ~tol:1e-9 "payoff peak" 1.3 p.Robust.x;
    check_true "interior" (p.Robust.bound = Robust.Interior)
  | Error _ -> Alcotest.fail "quadratic peak must converge"

let test_fused_corners () =
  (* peak left of the box: marginal negative everywhere -> Lower *)
  (match Robust.root_fused (quadratic_marginal (-1.)) ~x0:2. ~lo:0. ~hi:4. with
  | Ok p ->
    check_close ~tol:0. "clamped at lo" 0. p.Robust.x;
    check_true "lower corner" (p.Robust.bound = Robust.Lower)
  | Error _ -> Alcotest.fail "lower corner must be detected");
  (* peak right of the box: marginal positive everywhere -> Upper *)
  match Robust.root_fused (quadratic_marginal 9.) ~x0:2. ~lo:0. ~hi:4. with
  | Ok p ->
    check_close ~tol:0. "clamped at hi" 4. p.Robust.x;
    check_true "upper corner" (p.Robust.bound = Robust.Upper)
  | Error _ -> Alcotest.fail "upper corner must be detected"

let test_fused_skips_increasing_crossing () =
  (* u = -(x-1)(x-3): roots at 1 (payoff minimum, u increasing) and 3
     (payoff maximum, u decreasing). Started between them the solver
     must land on the maximum, never the minimum. *)
  let f x = (-.(x -. 1.) *. (x -. 3.), -2. *. (x -. 2.)) in
  match Robust.root_fused f ~x0:1.6 ~lo:0. ~hi:4. with
  | Ok p -> check_close ~tol:1e-9 "decreasing crossing" 3. p.Robust.x
  | Error _ -> Alcotest.fail "must converge to the payoff maximum"

let test_fused_nonconcave_start () =
  (* started where the objective is locally convex (du > 0) the solver
     must leap uphill instead of stepping toward the minimum *)
  let f x = (-.(x -. 1.) *. (x -. 3.), -2. *. (x -. 2.)) in
  match Robust.root_fused f ~x0:1.05 ~lo:0.5 ~hi:4. with
  | Ok p -> check_close ~tol:1e-9 "escapes the minimum" 3. p.Robust.x
  | Error _ -> Alcotest.fail "must escape the convex region"

let test_correct_converged_and_fallback () =
  Continuation.reset_stats ();
  (match Continuation.correct (quadratic_marginal 2.) ~x0:0.5 ~lo:0. ~hi:4. with
  | Continuation.Converged p -> check_close ~tol:1e-9 "converged" 2. p.Robust.x
  | _ -> Alcotest.fail "expected Converged");
  (* max_iter 0 forces the fused Newton to give up; the derivative-free
     chain must still find the sign change *)
  (match
     Continuation.correct ~max_iter:0 (fun x -> (1. -. x, -1.)) ~x0:0.2 ~lo:0.
       ~hi:4.
   with
  | Continuation.Fell_back s ->
    check_close ~tol:1e-7 "fallback root" 1. s.Robust.result.Rootfind.root
  | Continuation.Converged _ -> Alcotest.fail "max_iter 0 cannot converge"
  | Continuation.Failed _ -> Alcotest.fail "fallback chain must succeed");
  let s = Continuation.stats () in
  check_true "corrector iterations recorded" (s.Continuation.corrector_iterations > 0.);
  check_close ~tol:0. "one fallback recorded" 1. s.Continuation.fallbacks

let test_predict_secant () =
  let t = Continuation.track () in
  check_true "empty track predicts nothing"
    (Continuation.predict t ~at:1. = None);
  (* x(at) = [2 at; 5 - at] is linear, so the secant is exact *)
  Continuation.note t ~at:1. (Vec.of_list [ 2.; 4. ]);
  Continuation.note t ~at:2. (Vec.of_list [ 4.; 3. ]);
  (match Continuation.predict t ~at:3. with
  | Some g ->
    check_close ~tol:1e-12 "secant x0" 6. g.(0);
    check_close ~tol:1e-12 "secant x1" 2. g.(1)
  | None -> Alcotest.fail "two points must predict");
  Continuation.clear t;
  check_true "cleared track predicts nothing" (Continuation.predict t ~at:3. = None)

let test_predict_single_point_copies () =
  let t = Continuation.track () in
  Continuation.note t ~at:1. (Vec.of_list [ 2.; 4. ]);
  match Continuation.predict t ~at:5. with
  | Some g ->
    check_close ~tol:0. "copy x0" 2. g.(0);
    check_close ~tol:0. "copy x1" 4. g.(1);
    (* the guess must be a copy, not an alias of the noted point *)
    g.(0) <- 99.;
    (match Continuation.predict t ~at:5. with
    | Some g' -> check_close ~tol:0. "note kept its own copy" 2. g'.(0)
    | None -> Alcotest.fail "predict vanished")
  | None -> Alcotest.fail "one point must still predict"

let test_legacy_mode_disables_extrapolation () =
  Continuation.with_mode Continuation.Legacy (fun () ->
      let t = Continuation.track () in
      Continuation.note t ~at:1. (Vec.of_list [ 2. ]);
      Continuation.note t ~at:2. (Vec.of_list [ 4. ]);
      match Continuation.predict t ~at:3. with
      | Some g -> check_close ~tol:0. "legacy predicts last, not secant" 4. g.(0)
      | None -> Alcotest.fail "legacy still warm-starts");
  check_true "with_mode restores Fast" (Continuation.fast ())

let test_solve_cell_warm_and_fallback () =
  Continuation.reset_stats ();
  let t = Continuation.track () in
  let cold = ref 0 and warm = ref 0 in
  (* the "solver": the true solution is x(at) = [at]; a guess within
     0.5 counts as warm-accepted, anything else as a cold solve *)
  let solve_at at guess =
    match guess with
    | Some (g : Vec.t) when Float.abs (g.(0) -. at) <= 0.5 ->
      incr warm;
      (Vec.of_list [ at ], true)
    | _ ->
      incr cold;
      (Vec.of_list [ at ], true)
  in
  let cell at =
    Continuation.solve_cell t ~at ~solve:(solve_at at) ~extract:Fun.id ()
  in
  ignore (cell 1.0);
  (* no history: cold *)
  ignore (cell 1.2);
  (* single-point copy guess, off by 0.2: warm *)
  ignore (cell 1.4);
  (* secant guess is exact: warm *)
  Alcotest.(check int) "one cold solve" 1 !cold;
  Alcotest.(check int) "two warm solves" 2 !warm;
  let s = Continuation.stats () in
  check_close ~tol:0. "three cells stepped" 3. s.Continuation.steps;
  check_close ~tol:0. "two predictor accepts" 2. s.Continuation.predictor_accepts;
  (* a cell that refuses the guess AND the cold retry clears the track *)
  let rejected at guess =
    match guess with
    | Some _ -> (Vec.of_list [ at ], false)
    | None -> (Vec.of_list [ at ], false)
  in
  ignore (Continuation.solve_cell t ~at:1.6 ~solve:(rejected 1.6) ~extract:Fun.id ());
  check_true "unsettled cell clears the track"
    (Continuation.predict t ~at:1.8 = None);
  check_true "guess rejection counts as fallback"
    ((Continuation.stats ()).Continuation.fallbacks >= 1.)

let test_solve_cell_clamp () =
  let t = Continuation.track () in
  Continuation.note t ~at:1. (Vec.of_list [ 3. ]);
  Continuation.note t ~at:2. (Vec.of_list [ 6. ]);
  let seen = ref None in
  let solve g =
    seen := Option.map Vec.copy g;
    (Vec.of_list [ 0. ], true)
  in
  ignore
    (Continuation.solve_cell ~clamp:(Vec.clamp ~lo:0. ~hi:5.) t ~at:3. ~solve
       ~extract:Fun.id ());
  match !seen with
  | Some g -> check_close ~tol:0. "secant 9 clamped to box" 5. g.(0)
  | None -> Alcotest.fail "warm guess expected"

let suite =
  ( "continuation",
    [
      quick "fused newton: interior peak" test_fused_interior;
      quick "fused newton: KKT corners" test_fused_corners;
      quick "fused newton: skips increasing crossing" test_fused_skips_increasing_crossing;
      quick "fused newton: escapes convex region" test_fused_nonconcave_start;
      quick "correct: converged and fallback" test_correct_converged_and_fallback;
      quick "predict: secant is exact on linear tracks" test_predict_secant;
      quick "predict: single point copies" test_predict_single_point_copies;
      quick "legacy mode disables extrapolation" test_legacy_mode_disables_extrapolation;
      quick "solve_cell: warm starts and fallback" test_solve_cell_warm_and_fallback;
      quick "solve_cell: clamps the guess" test_solve_cell_clamp;
    ] )
