let () =
  Alcotest.run "numerics"
    [
      Suite_vec.suite;
      Suite_mat.suite;
      Suite_linalg.suite;
      Suite_eigen.suite;
      Suite_rootfind.suite;
      Suite_fixedpoint.suite;
      Suite_diff.suite;
      Suite_dual.suite;
      Suite_continuation.suite;
      Suite_optimize.suite;
      Suite_quadrature.suite;
      Suite_interp.suite;
      Suite_rng.suite;
      Suite_stats.suite;
      Suite_grid.suite;
      Suite_ode.suite;
    ]
