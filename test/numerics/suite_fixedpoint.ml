open Numerics
open Test_helpers

let test_cosine_fixed_point () =
  (* the classic x = cos x, fixed point ~ 0.739085 *)
  let r = Fixedpoint.iterate cos ~x0:1. in
  check_close ~tol:1e-9 "cos fixed point" 0.7390851332151607 r.Fixedpoint.point

let test_damping () =
  (* x = 2.8 (1 - x) oscillates undamped around 0.7368; damping settles it *)
  let f x = 2.8 *. (1. -. x) in
  let r = Fixedpoint.iterate ~damping:0.3 f ~x0:0.2 in
  check_close ~tol:1e-8 "damped fixed point" (2.8 /. 3.8) r.Fixedpoint.point;
  check_raises_invalid "bad damping" (fun () ->
      Fixedpoint.iterate ~damping:1.5 f ~x0:0.2 |> ignore)

let test_undamped_residual_stopping () =
  (* testing the damped step |x'-x| = damping*|f(x)-x| used to declare
     convergence at a true residual of tol/damping *)
  let f x = (0.5 *. x) +. 1. in
  let r = Fixedpoint.iterate ~damping:0.05 ~tol:1e-10 f ~x0:0. in
  check_true "true residual honours tol"
    (Float.abs (f r.Fixedpoint.point -. r.Fixedpoint.point) <= 1e-9);
  check_true "reported residual is undamped" (r.Fixedpoint.residual <= 1e-10)

let test_no_convergence () =
  match Fixedpoint.iterate ~max_iter:50 (fun x -> x +. 1.) ~x0:0. with
  | _ -> Alcotest.fail "expected No_convergence"
  | exception Fixedpoint.No_convergence _ -> ()

let test_vector_iteration () =
  (* contraction toward [1; 2] *)
  let target = Vec.of_list [ 1.; 2. ] in
  let f x = Vec.axpy 0.5 (Vec.sub target x) x in
  let r = Fixedpoint.iterate_vec f ~x0:(Vec.zeros 2) in
  check_true "vector fixed point" (Vec.approx_equal ~tol:1e-8 r.Fixedpoint.point target)

let test_aitken_acceleration () =
  (* slow contraction: x <- 0.99 x + 0.01; plain iteration needs thousands
     of steps, Aitken needs a handful *)
  let f x = (0.99 *. x) +. 0.01 in
  let r = Fixedpoint.aitken ~tol:1e-12 f ~x0:0. in
  check_close ~tol:1e-8 "aitken limit" 1. r.Fixedpoint.point;
  check_true "aitken is fast" (r.Fixedpoint.iterations < 50)

let prop_linear_contraction =
  prop "iterate solves x = a x + b for |a| < 1" ~count:100
    QCheck2.Gen.(pair (float_range (-0.9) 0.9) (float_range (-5.) 5.))
    (fun (a, b) ->
      let r = Fixedpoint.iterate ~max_iter:10_000 (fun x -> (a *. x) +. b) ~x0:0. in
      Float.abs (r.Fixedpoint.point -. (b /. (1. -. a))) < 1e-6)

let suite =
  ( "fixedpoint",
    [
      quick "cosine" test_cosine_fixed_point;
      quick "damping" test_damping;
      quick "undamped residual" test_undamped_residual_stopping;
      quick "divergence detected" test_no_convergence;
      quick "vector" test_vector_iteration;
      quick "aitken" test_aitken_acceleration;
      prop_linear_contraction;
    ] )
