open Numerics
open Test_helpers

let cubic x = (x *. x *. x) -. (2. *. x) -. 5. (* root near 2.0945514815 *)
let cubic_root = 2.0945514815423265

let test_bisect () =
  let r = Rootfind.bisect cubic ~lo:0. ~hi:3. in
  check_close ~tol:1e-9 "bisect root" cubic_root r.Rootfind.root;
  check_true "bisect converged fast enough" (r.Rootfind.iterations <= 60)

let test_brent () =
  let r = Rootfind.brent cubic ~lo:0. ~hi:3. in
  check_close ~tol:1e-10 "brent root" cubic_root r.Rootfind.root;
  let rb = Rootfind.bisect cubic ~lo:0. ~hi:3. in
  check_true "brent uses fewer evaluations than bisection"
    (r.Rootfind.evaluations < rb.Rootfind.evaluations)

let test_endpoint_roots () =
  let f x = x -. 1. in
  check_close "root at lo" 1. (Rootfind.brent f ~lo:1. ~hi:2.).Rootfind.root;
  check_close "root at hi" 1. (Rootfind.brent f ~lo:0. ~hi:1.).Rootfind.root

let test_no_bracket () =
  (match Rootfind.brent (fun x -> (x *. x) +. 1.) ~lo:(-1.) ~hi:1. with
  | _ -> Alcotest.fail "expected No_bracket"
  | exception Rootfind.No_bracket _ -> ());
  check_raises_invalid "bad interval" (fun () ->
      Rootfind.brent cubic ~lo:3. ~hi:0. |> ignore)

let test_newton () =
  let df x = (3. *. x *. x) -. 2. in
  let r = Rootfind.newton cubic ~df ~x0:2. in
  check_close ~tol:1e-10 "newton root" cubic_root r.Rootfind.root;
  check_true "newton quadratic convergence" (r.Rootfind.iterations <= 8);
  match Rootfind.newton (fun x -> x *. x) ~df:(fun _ -> 0.) ~x0:1. with
  | _ -> Alcotest.fail "expected No_convergence"
  | exception Rootfind.No_convergence _ -> ()

let test_secant () =
  let r = Rootfind.secant cubic ~x0:1. ~x1:3. in
  check_close ~tol:1e-9 "secant root" cubic_root r.Rootfind.root;
  check_raises_invalid "identical points" (fun () ->
      Rootfind.secant cubic ~x0:1. ~x1:1. |> ignore)

let test_bracket_outward () =
  let f x = x -. 100. in
  let lo, hi = Rootfind.bracket_outward f ~lo:0. ~hi:1. in
  check_true "bracket contains root" (lo <= 100. && hi >= 100.);
  match Rootfind.bracket_outward (fun _ -> 1.) ~lo:0. ~hi:1. with
  | _ -> Alcotest.fail "expected No_bracket"
  | exception Rootfind.No_bracket _ -> ()

let test_brent_auto () =
  let f x = exp x -. 20. in
  let r = Rootfind.brent_auto f ~lo:0. ~hi:1. in
  check_close ~tol:1e-9 "auto-bracketed root" (log 20.) r.Rootfind.root

let test_brent_auto_evaluations () =
  (* endpoint values are threaded through the bracket check, the outward
     expansion and Brent itself: the accounting equals the actual calls *)
  let count = ref 0 in
  let counted x =
    incr count;
    cubic x
  in
  let r = Rootfind.brent_auto counted ~lo:0. ~hi:3. in
  Alcotest.(check int) "bracketed case: accounting = actual calls" !count
    r.Rootfind.evaluations;
  let direct = Rootfind.brent cubic ~lo:0. ~hi:3. in
  Alcotest.(check int) "bracketed case costs the same as plain brent"
    direct.Rootfind.evaluations r.Rootfind.evaluations;
  let count' = ref 0 in
  let expanding x =
    incr count';
    x -. 100.
  in
  let r' = Rootfind.brent_auto expanding ~lo:0. ~hi:1. in
  check_close ~tol:1e-9 "expanded root" 100. r'.Rootfind.root;
  Alcotest.(check int) "expansion case: accounting = actual calls" !count'
    r'.Rootfind.evaluations

let prop_brent_finds_planted_root =
  prop "brent recovers a planted root of a monotone cubic" ~count:200
    (float_range (-5.) 5.)
    (fun root ->
      let f x =
        let d = x -. root in
        (d *. d *. d) +. d
      in
      let r = Rootfind.brent_auto f ~lo:(root -. 1.) ~hi:(root +. 1.3) in
      Float.abs (r.Rootfind.root -. root) < 1e-8)

let prop_newton_matches_brent =
  prop "newton and brent agree on exp(x) = c" ~count:100 (float_range 0.5 50.)
    (fun c ->
      let f x = exp x -. c in
      let newton = Rootfind.newton f ~df:exp ~x0:1. in
      let brent = Rootfind.brent_auto f ~lo:(-1.) ~hi:5. in
      Float.abs (newton.Rootfind.root -. brent.Rootfind.root) < 1e-8)

let suite =
  ( "rootfind",
    [
      quick "bisect" test_bisect;
      quick "brent" test_brent;
      quick "endpoint roots" test_endpoint_roots;
      quick "no bracket" test_no_bracket;
      quick "newton" test_newton;
      quick "secant" test_secant;
      quick "bracket outward" test_bracket_outward;
      quick "brent auto" test_brent_auto;
      quick "brent auto evaluations" test_brent_auto_evaluations;
      prop_brent_finds_planted_root;
      prop_newton_matches_brent;
    ] )
