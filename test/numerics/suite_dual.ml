open Numerics
open Test_helpers

(* A composite exercising every Field/Dual primitive at once; smooth on
   (0, 3) so stencils behave. *)
let composite x =
  Float.exp (0.3 *. x)
  +. Float.log (1. +. (x *. x))
  +. Float.log1p x +. Float.expm1 (0.2 *. x)
  +. Float.sqrt (1. +. x) +. Float.pow x 1.7
  +. ((x -. 0.5) /. (1. +. x)) -. (2. *. x)

let composite_d x =
  Dual.(
    exp (const 0.3 * x)
    + log (const 1. + (x * x))
    + log1p x + expm1 (const 0.2 * x)
    + sqrt (const 1. + x) + pow_f x 1.7
    + ((x - const 0.5) / (const 1. + x)) - (const 2. * x))

let composite_d2 x =
  Dual.Order2.(
    exp (const 0.3 * x)
    + log (const 1. + (x * x))
    + log1p x + expm1 (const 0.2 * x)
    + sqrt (const 1. + x) + pow_f x 1.7
    + ((x - const 0.5) / (const 1. + x)) - (const 2. * x))

let rel_close ~tol expected actual =
  Float.abs (actual -. expected) <= tol *. (1. +. Float.abs expected)

let test_primal_matches_float () =
  (* the dual primal must be the SAME arithmetic as the float closure *)
  List.iter
    (fun x ->
      check_close ~tol:0. "primal identical" (composite x)
        (Dual.v (composite_d (Dual.var x)));
      check_close ~tol:0. "order2 primal identical" (composite x)
        (Dual.Order2.v (composite_d2 (Dual.Order2.var x))))
    [ 0.2; 0.7; 1.3; 2.6 ]

let test_derivative_vs_richardson () =
  List.iter
    (fun x ->
      let exact = Dual.d (composite_d (Dual.var x)) in
      let stencil = Diff.richardson composite x in
      check_true
        (Printf.sprintf "d at %.2f: %.10g vs %.10g" x exact stencil)
        (rel_close ~tol:1e-7 stencil exact))
    [ 0.2; 0.7; 1.3; 2.6 ]

let test_second_derivative_vs_stencil () =
  List.iter
    (fun x ->
      let dd = Dual.Order2.dd (composite_d2 (Dual.Order2.var x)) in
      let stencil = Diff.second composite x in
      check_true
        (Printf.sprintf "dd at %.2f: %.8g vs %.8g" x dd stencil)
        (rel_close ~tol:1e-4 stencil dd))
    [ 0.2; 0.7; 1.3; 2.6 ]

let test_order2_d_matches_order1 () =
  List.iter
    (fun x ->
      check_close ~tol:0. "order2 d = order1 d"
        (Dual.d (composite_d (Dual.var x)))
        (Dual.Order2.d (composite_d2 (Dual.Order2.var x))))
    [ 0.2; 0.7; 1.3; 2.6 ]

let test_seed_linearity () =
  (* forward mode is linear in the seed: d along seed c is c * d *)
  let x = 1.4 and c = 2.5 in
  let base = Dual.d (composite_d (Dual.var x)) in
  let scaled = Dual.d (composite_d (Dual.make ~v:x ~d:c)) in
  check_close ~tol:1e-12 "seed scales derivative" (c *. base) scaled

let test_const_has_zero_derivative () =
  let y = composite_d (Dual.const 1.3) in
  check_close ~tol:0. "const in, const out" 0. (Dual.d y);
  let y2 = composite_d2 (Dual.Order2.const 1.3) in
  check_close ~tol:0. "order2 const d" 0. (Dual.Order2.d y2);
  check_close ~tol:0. "order2 const dd" 0. (Dual.Order2.dd y2)

let test_ad_entry_points () =
  let f x = Dual.(x * x * x) in
  check_close ~tol:1e-12 "Ad.derivative x^3" 12. (Ad.derivative f 2.);
  let v, d = Ad.value_and_derivative f 2. in
  check_close ~tol:1e-12 "value" 8. v;
  check_close ~tol:1e-12 "derivative" 12. d;
  let f2 x = Dual.Order2.(x * x * x) in
  let v, d, dd = Ad.derivative2 f2 2. in
  check_close ~tol:1e-12 "d2 value" 8. v;
  check_close ~tol:1e-12 "d2 first" 12. d;
  check_close ~tol:1e-12 "d2 second" 12. dd;
  let g (x : Dual.t array) = Dual.((x.(0) * x.(1)) + (x.(0) * x.(0))) in
  let grad = Ad.gradient g (Vec.of_list [ 2.; 3. ]) in
  check_close ~tol:1e-12 "grad x0" 7. grad.(0);
  check_close ~tol:1e-12 "grad x1" 2. grad.(1);
  let h (x : Dual.t array) =
    [| Dual.(x.(0) * x.(1)); Dual.(x.(0) + (const 2. * x.(1))) |]
  in
  let j = Ad.jacobian h (Vec.of_list [ 3.; 4. ]) in
  check_close ~tol:1e-12 "j00" 4. (Mat.get j 0 0);
  check_close ~tol:1e-12 "j01" 3. (Mat.get j 0 1);
  check_close ~tol:1e-12 "j10" 1. (Mat.get j 1 0);
  check_close ~tol:1e-12 "j11" 2. (Mat.get j 1 1)

let test_pass_counter () =
  Ad.reset_stats ();
  ignore (Ad.derivative (fun x -> Dual.(x * x)) 3.);
  ignore (Ad.gradient (fun x -> x.(0)) (Vec.of_list [ 1.; 2.; 3. ]));
  (* gradient seeds one pass per coordinate *)
  check_close ~tol:0. "four passes recorded" 4. (Ad.stats ()).Ad.passes;
  Ad.reset_stats ();
  check_close ~tol:0. "reset zeroes" 0. (Ad.stats ()).Ad.passes

let prop_dual_matches_richardson =
  prop "dual derivative tracks richardson on the composite" ~count:200
    (float_range 0.1 2.9)
    (fun x ->
      let exact = Dual.d (composite_d (Dual.var x)) in
      rel_close ~tol:1e-6 (Diff.richardson composite x) exact)

let prop_product_rule =
  prop "product rule holds exactly" ~count:200
    QCheck2.Gen.(
      triple (float_range (-2.) 2.) (float_range (-2.) 2.) (float_range 0.5 2.))
    (fun (a, b, x) ->
      let u = Dual.make ~v:a ~d:x and w = Dual.make ~v:b ~d:1. in
      let p = Dual.(u * w) in
      Float.abs (Dual.d p -. ((x *. b) +. (a *. 1.))) <= 1e-12)

let suite =
  ( "dual",
    [
      quick "primal identical to float closure" test_primal_matches_float;
      quick "derivative vs richardson" test_derivative_vs_richardson;
      quick "second derivative vs stencil" test_second_derivative_vs_stencil;
      quick "order2 first derivative consistent" test_order2_d_matches_order1;
      quick "seed linearity" test_seed_linearity;
      quick "constants carry zero derivative" test_const_has_zero_derivative;
      quick "Ad entry points" test_ad_entry_points;
      quick "Ad pass counter" test_pass_counter;
      prop_dual_matches_richardson;
      prop_product_rule;
    ] )
