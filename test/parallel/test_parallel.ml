(* Domain-pool suite: chunking and result ordering, serial edge cases,
   exception transport, chunk-local warm-start state, cross-domain
   propagation of watchdog probes and chaos faults, and the determinism
   contract at the experiment level — `--jobs 1` and `--jobs 4` must
   produce byte-identical CSVs for the grid experiments. *)

open Test_helpers

let with_pool ?domains f =
  let pool = Parallel.Pool.create ?domains () in
  Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown pool) (fun () -> f pool)

(* -- ranges --------------------------------------------------------- *)

let test_ranges () =
  Alcotest.(check (list (pair int int)))
    "uneven tail"
    [ (0, 3); (3, 6); (6, 9); (9, 10) ]
    (Array.to_list (Parallel.Pool.ranges ~n:10 ~chunk:3));
  Alcotest.(check (list (pair int int)))
    "chunk wider than n" [ (0, 4) ]
    (Array.to_list (Parallel.Pool.ranges ~n:4 ~chunk:100));
  Alcotest.(check (list (pair int int)))
    "empty input" []
    (Array.to_list (Parallel.Pool.ranges ~n:0 ~chunk:5));
  check_raises_invalid "chunk 0 rejected" (fun () ->
      Parallel.Pool.ranges ~n:5 ~chunk:0);
  check_raises_invalid "negative n rejected" (fun () ->
      Parallel.Pool.ranges ~n:(-1) ~chunk:5)

(* -- construction edge cases ---------------------------------------- *)

let test_create_validation () =
  check_raises_invalid "0 domains rejected" (fun () ->
      Parallel.Pool.create ~domains:0 ());
  check_raises_invalid "negative domains rejected" (fun () ->
      Parallel.Pool.create ~domains:(-3) ());
  check_raises_invalid "absurd domain count rejected" (fun () ->
      Parallel.Pool.create ~domains:129 ());
  with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "1-domain pool" 1 (Parallel.Pool.size pool))

let test_shutdown_idempotent () =
  let pool = Parallel.Pool.create ~domains:2 () in
  Parallel.Pool.shutdown pool;
  Parallel.Pool.shutdown pool;
  check_raises_invalid "submitting after shutdown rejected" (fun () ->
      Parallel.Pool.map pool Fun.id [| 1; 2; 3 |])

(* -- map: ordering -------------------------------------------------- *)

let test_map_ordering () =
  with_pool ~domains:4 (fun pool ->
      let xs = Array.init 100 Fun.id in
      let got = Parallel.Pool.map ~chunk:3 pool (fun x -> x * x) xs in
      Alcotest.(check (array int))
        "results in index order"
        (Array.map (fun x -> x * x) xs)
        got;
      Alcotest.(check (array int))
        "empty map" [||]
        (Parallel.Pool.map pool (fun x -> x * x) [||]))

let test_serial_pool_order () =
  (* a 1-domain pool degenerates to serial execution in submission order *)
  with_pool ~domains:1 (fun pool ->
      let visited = ref [] in
      let got =
        Parallel.Pool.map ~chunk:1 pool
          (fun i ->
            visited := i :: !visited;
            i)
          (Array.init 10 Fun.id)
      in
      Alcotest.(check (list int))
        "submission order" (List.init 10 Fun.id)
        (List.rev !visited);
      Alcotest.(check (array int)) "identity" (Array.init 10 Fun.id) got)

(* -- chunk-local state ---------------------------------------------- *)

let step s x = (s +. x, s +. x)

let test_fold_map () =
  let xs = Array.init 7 float_of_int in
  let got = Parallel.Pool.fold_map ~init:10. ~step xs in
  let s = ref 10. in
  let want =
    Array.map
      (fun x ->
        s := !s +. x;
        !s)
      xs
  in
  Alcotest.(check (array (float 1e-12))) "running sums" want got;
  Alcotest.(check (array (float 1e-12)))
    "empty fold_map" [||]
    (Parallel.Pool.fold_map ~init:0. ~step [||])

let test_map_chunked_state () =
  let xs = Array.init 23 float_of_int in
  let init lo = float_of_int (lo * 100) in
  (* reference: the same chunk decomposition folded serially *)
  let want =
    Array.concat
      (Parallel.Pool.ranges ~n:(Array.length xs) ~chunk:5
      |> Array.to_list
      |> List.map (fun (lo, hi) ->
             Parallel.Pool.fold_map ~init:(init lo) ~step
               (Array.sub xs lo (hi - lo))))
  in
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
          let got = Parallel.Pool.map_chunked pool ~chunk:5 ~init ~step xs in
          Alcotest.(check (array (float 1e-12)))
            (Printf.sprintf "chunk-local state at %d domains" domains)
            want got))
    [ 1; 2; 4 ]

(* -- exception transport -------------------------------------------- *)

exception Boom of int

let test_exception_propagation () =
  with_pool ~domains:4 (fun pool ->
      (match
         Parallel.Pool.map ~chunk:1 pool
           (fun i -> if i >= 3 then raise (Boom i) else i)
           (Array.init 10 Fun.id)
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> check_true "a failing index surfaced" (i >= 3));
      (* a single raising task is deterministic: its exception arrives *)
      (match
         Parallel.Pool.map ~chunk:2 pool
           (fun i -> if i = 5 then raise (Boom i) else i)
           (Array.init 8 Fun.id)
       with
      | _ -> Alcotest.fail "expected Boom 5"
      | exception Boom 5 -> ()
      | exception Boom i -> Alcotest.failf "wrong index %d" i);
      (* the pool survives failed batches *)
      Alcotest.(check (array int))
        "pool usable after a failure"
        (Array.map (fun x -> x * 2) (Array.init 7 Fun.id))
        (Parallel.Pool.map ~chunk:2 pool (fun x -> x * 2) (Array.init 7 Fun.id)))

(* -- stats ----------------------------------------------------------- *)

let test_stats () =
  with_pool ~domains:3 (fun pool ->
      ignore (Parallel.Pool.map ~chunk:1 pool Fun.id (Array.init 12 Fun.id));
      let s = Parallel.Pool.stats pool in
      Alcotest.(check int) "domains" 3 s.Parallel.Pool.domains;
      check_true "a batch was recorded" (s.Parallel.Pool.batches >= 1);
      Alcotest.(check int)
        "every task accounted for" 12
        (Array.fold_left ( + ) 0 s.Parallel.Pool.tasks_run))

(* -- rng splitting --------------------------------------------------- *)

let test_split_n_streams () =
  let draws rng = Array.init 5 (fun _ -> Numerics.Rng.float rng) in
  let a = Numerics.Rng.split_n (Numerics.Rng.create 42L) 3 in
  let b = Numerics.Rng.split_n (Numerics.Rng.create 42L) 3 in
  (* drain b's streams in reverse order: children must be independent,
     so per-stream draws cannot depend on evaluation order *)
  let vb = Array.make 3 [||] in
  for i = 2 downto 0 do
    vb.(i) <- draws b.(i)
  done;
  let va = Array.map draws a in
  for i = 0 to 2 do
    Alcotest.(check (array (float 0.)))
      (Printf.sprintf "stream %d order-independent" i)
      va.(i) vb.(i)
  done;
  Alcotest.(check int) "empty split" 0
    (Array.length (Numerics.Rng.split_n (Numerics.Rng.create 1L) 0));
  check_raises_invalid "negative count rejected" (fun () ->
      Numerics.Rng.split_n (Numerics.Rng.create 1L) (-1))

(* -- context propagation: watchdog and faults ----------------------- *)

(* burns guarded objective evaluations inside a pool worker *)
let solve_once () =
  match
    Numerics.Robust.root ~ctx:"test-parallel" (fun x -> (x *. x) -. 2.) ~lo:0. ~hi:2.
  with
  | Ok s -> s.Numerics.Robust.result.Numerics.Rootfind.root
  | Error e ->
    Alcotest.failf "unexpected solver error: %s" (Numerics.Robust.error_message e)

let test_watchdog_crosses_pool () =
  (* the guard's probe is captured at submission and re-installed in
     every worker: a budget set on the main domain trips on work done
     by the spawned ones, and the typed exception unwinds to the
     submission site *)
  with_pool ~domains:4 (fun pool ->
      let lims = Runner.Watchdog.limits ~max_evals:5 () in
      match
        Runner.Watchdog.guard lims (fun () ->
            Parallel.Pool.map ~chunk:1 pool
              (fun _ -> solve_once ())
              (Array.init 16 Fun.id))
      with
      | _ -> Alcotest.fail "expected Eval_budget_exceeded"
      | exception Runner.Watchdog.Eval_budget_exceeded { evaluations; limit } ->
        Alcotest.(check int) "limit recorded" 5 limit;
        check_true "tripped at the limit" (evaluations >= limit));
  (* after the guard, pooled work runs unbudgeted again *)
  with_pool ~domains:2 (fun pool ->
      let roots =
        Parallel.Pool.map ~chunk:1 pool (fun _ -> solve_once ()) (Array.init 4 Fun.id)
      in
      Array.iter (fun r -> check_close ~tol:1e-9 "sqrt 2" (sqrt 2.) r) roots)

let test_fault_crosses_pool () =
  (* a process-global fault installed on the main domain is snapshot
     into the workers; its shared atomic counters make every worker's
     evaluations visible back on the main domain *)
  Fun.protect ~finally:(fun () -> Numerics.Fault.set_global None) @@ fun () ->
  Numerics.Fault.set_global
    (Some (Numerics.Fault.Spike { at = -10.; width = 0.01; height = 1. }));
  with_pool ~domains:4 (fun pool ->
      ignore
        (Parallel.Pool.map ~chunk:1 pool (fun _ -> solve_once ()) (Array.init 8 Fun.id)));
  check_true "worker evaluations counted process-wide"
    (Numerics.Fault.global_evaluations () > 0)

(* -- experiment-level determinism ----------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let csv_bytes ~dir id =
  let sub = Filename.concat dir id in
  Sys.readdir sub |> Array.to_list |> List.sort compare
  |> List.map (fun f -> (f, read_file (Filename.concat sub f)))

let run_and_save ~jobs ~dir id =
  Parallel.Runtime.set_jobs jobs;
  let outcome = Experiments.Common.run (Experiments.Registry.find_exn id) in
  Experiments.Common.save outcome ~dir

let test_jobs_determinism () =
  (* the acceptance bar of the determinism contract: `--jobs 1` and
     `--jobs 4` regenerate byte-identical CSVs (on a single-core host
     the 4 domains still interleave, so this exercises real scheduling
     nondeterminism) *)
  let d1 = Filename.temp_dir "subs-jobs1-" "" in
  let d4 = Filename.temp_dir "subs-jobs4-" "" in
  List.iter
    (fun id ->
      run_and_save ~jobs:1 ~dir:d1 id;
      run_and_save ~jobs:4 ~dir:d4 id;
      let a = csv_bytes ~dir:d1 id and b = csv_bytes ~dir:d4 id in
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "%s CSVs byte-identical at jobs 1 and 4" id)
        a b;
      check_true (Printf.sprintf "%s produced CSVs" id) (a <> []))
    [ "capacity"; "duopoly" ]

let test_robustness_jobs_determinism () =
  (* the Monte-Carlo sweep draws from per-sample split generators, so
     its tables cannot depend on which domain evaluates which sample *)
  let tables_at jobs =
    Parallel.Runtime.set_jobs jobs;
    let outcome, _ = Experiments.Robustness_exp.run_samples ~samples:12 () in
    List.map
      (fun (name, t) -> (name, Report.Table.to_string t))
      outcome.Experiments.Common.tables
  in
  Alcotest.(check (list (pair string string)))
    "robustness tables identical at jobs 1 and 4" (tables_at 1) (tables_at 4)

(* -- chaos x pool ---------------------------------------------------- *)

let test_chaos_pair_with_pool () =
  (* one (fault scenario, pooled experiment) pair under the chaos
     harness at jobs 2: the fault must reach the workers, the verdict
     must be contained, and the manifest entry must round-trip *)
  Parallel.Runtime.set_jobs 2;
  let scenario =
    List.find
      (fun s -> String.equal s.Runner.Chaos.name "nan-region")
      Runner.Chaos.default_scenarios
  in
  let experiment = Experiments.Registry.find_exn "robustness" in
  let report =
    Runner.Chaos.run
      ~limits:(Runner.Watchdog.limits ~deadline_s:120. ())
      ~scenarios:[ scenario ] ~experiments:[ experiment ] ()
  in
  check_true "pair contained" report.Runner.Chaos.ok;
  match report.Runner.Chaos.verdicts with
  | [ v ] ->
    check_true "typed manifest entry round-trips" v.Runner.Chaos.contained;
    check_true "fault observed pooled evaluations" (v.Runner.Chaos.injected_evals > 0);
    Alcotest.(check string)
      "manifest id is scenario:experiment" "nan-region:robustness"
      v.Runner.Chaos.entry.Runner.Manifest.id
  | vs -> Alcotest.failf "expected exactly one verdict, got %d" (List.length vs)

let () =
  Alcotest.run "parallel"
    [
      ( "pool-basics",
        [
          quick "ranges cover in order" test_ranges;
          quick "creation bounds enforced" test_create_validation;
          quick "shutdown is idempotent and final" test_shutdown_idempotent;
          quick "map preserves index order" test_map_ordering;
          quick "1-domain pool is serial" test_serial_pool_order;
          quick "stats account for every task" test_stats;
        ] );
      ( "chunk-local-state",
        [
          quick "fold_map is the serial scan" test_fold_map;
          quick "map_chunked restarts state per chunk" test_map_chunked_state;
        ] );
      ( "failure-transport",
        [ quick "exceptions reach the submitter" test_exception_propagation ] );
      ( "context-propagation",
        [
          quick "watchdog budget crosses domains" test_watchdog_crosses_pool;
          quick "global faults cross domains" test_fault_crosses_pool;
        ] );
      ("rng", [ quick "split_n streams are order-independent" test_split_n_streams ]);
      ( "determinism",
        [
          quick "capacity+duopoly CSVs identical at jobs 1 and 4"
            test_jobs_determinism;
          quick "robustness identical at jobs 1 and 4"
            test_robustness_jobs_determinism;
        ] );
      ( "chaos",
        [ quick "fault x pooled experiment is contained" test_chaos_pair_with_pool ] );
    ]
