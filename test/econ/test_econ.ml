let () =
  Alcotest.run "econ"
    [
      Suite_demand.suite;
      Suite_throughput.suite;
      Suite_utilization.suite;
      Suite_elasticity.suite;
      Suite_cp_isp.suite;
      Suite_aggregate.suite;
      Suite_calibrate.suite;
      Suite_ad.suite;
    ]
