open Test_helpers
module Dual = Numerics.Dual
module Diff = Numerics.Diff
module Rng = Numerics.Rng

(* Pin the dual-number evaluators of every functorized econ kernel
   against Richardson-extrapolated stencils of the float closures: the
   two must agree to 1e-6 relative error on random draws, or the exact
   Newton/Jacobian paths and the legacy finite-difference paths solve
   different games. *)

let rel_close ~tol expected actual =
  Float.abs (actual -. expected) <= tol *. (1. +. Float.abs expected)

let check_pin name ~f ~f_d x =
  let stencil = Diff.richardson f x in
  let exact = Dual.d (f_d (Dual.var x)) in
  check_true
    (Printf.sprintf "%s at %.4f: AD %.10g vs FD %.10g" name x exact stencil)
    (rel_close ~tol:1e-6 stencil exact);
  (* primal values must be IDENTICAL: the kernels are the same code *)
  check_close ~tol:0.
    (Printf.sprintf "%s primal at %.4f" name x)
    (f x)
    (Dual.v (f_d (Dual.var x)))

(* one deterministic Rng child per (family, draw): the draws do not
   depend on how many families run or in which order *)
let draws ~lo ~hi rng n =
  Array.map (fun r -> Rng.uniform r ~lo ~hi) (Rng.split_n rng n)

let demand_families =
  [
    Econ.Demand.exponential ~m0:1.3 ~alpha:2.1 ();
    Econ.Demand.isoelastic ~m0:0.8 ~scale:0.7 ~alpha:1.6 ();
    Econ.Demand.logit ~m0:1.1 ~midpoint:0.4 ~slope:3. ();
  ]

let test_demand_families () =
  let rng = Rng.create 11L in
  List.iter
    (fun d ->
      let name = Econ.Demand.label d in
      (* subsidies push effective charges negative: test both signs *)
      Array.iter
        (fun t ->
          check_pin (name ^ " population")
            ~f:(Econ.Demand.population d)
            ~f_d:(Econ.Demand.population_d d) t;
          check_pin (name ^ " slope")
            ~f:(Econ.Demand.derivative d)
            ~f_d:(Econ.Demand.slope_d d) t;
          (* the analytic slope closure IS the population derivative *)
          check_true (name ^ " slope = d population")
            (rel_close ~tol:1e-12
               (Dual.d (Econ.Demand.population_d d (Dual.var t)))
               (Econ.Demand.derivative d t)))
        (draws ~lo:(-0.8) ~hi:2.5 (Rng.split rng) 8))
    demand_families

let throughput_families =
  [
    Econ.Throughput.exponential ~l0:1.2 ~beta:1.8 ();
    Econ.Throughput.isoelastic ~l0:0.9 ~beta:1.4 ();
    Econ.Throughput.rational ~l0:1.1 ~beta:2.2 ();
  ]

let test_throughput_families () =
  let rng = Rng.create 12L in
  List.iter
    (fun th ->
      let name = Econ.Throughput.label th in
      Array.iter
        (fun phi ->
          check_pin (name ^ " rate")
            ~f:(Econ.Throughput.rate th)
            ~f_d:(Econ.Throughput.rate_d th) phi;
          check_pin (name ^ " slope")
            ~f:(Econ.Throughput.derivative th)
            ~f_d:(Econ.Throughput.slope_d th) phi)
        (draws ~lo:0.05 ~hi:3. (Rng.split rng) 8))
    throughput_families

let utilization_families =
  [ Econ.Utilization.linear; Econ.Utilization.power 1.7; Econ.Utilization.log_family ]

let test_utilization_families () =
  let rng = Rng.create 13L in
  List.iter
    (fun u ->
      let name = Econ.Utilization.label u in
      let mu = 0.8 in
      Array.iter
        (fun phi ->
          check_pin (name ^ " theta_of")
            ~f:(fun phi -> Econ.Utilization.theta_of u ~phi ~mu)
            ~f_d:(fun phi -> Econ.Utilization.theta_of_d u ~phi ~mu)
            phi;
          (* the kernel's dtheta_dphi must equal the dual derivative *)
          check_true (name ^ " dtheta_dphi = d theta_of")
            (rel_close ~tol:1e-12
               (Dual.d (Econ.Utilization.theta_of_d u ~phi:(Dual.var phi) ~mu))
               (Econ.Utilization.dtheta_dphi u ~phi ~mu)))
        (draws ~lo:0.05 ~hi:2.5 (Rng.split rng) 8))
    utilization_families

let test_cp_and_aggregate () =
  let rng = Rng.create 14L in
  let cp = Econ.Cp.exponential ~m0:1.2 ~l0:0.9 ~alpha:2.5 ~beta:1.5 ~value:1. () in
  Array.iter
    (fun x ->
      check_pin "cp population" ~f:(Econ.Cp.population cp)
        ~f_d:(Econ.Cp.population_d cp) x;
      check_pin "cp rate" ~f:(Econ.Cp.rate cp) ~f_d:(Econ.Cp.rate_d cp) x)
    (draws ~lo:0.05 ~hi:2. (Rng.split rng) 6);
  let cps =
    [
      cp;
      Econ.Cp.exponential ~m0:0.7 ~l0:1.4 ~alpha:1.8 ~beta:2.1 ~value:0.5 ();
    ]
  in
  let pooled ~charge ~phi =
    List.fold_left
      (fun acc cp -> acc +. Econ.Cp.throughput_at cp ~charge ~phi)
      0. cps
  in
  Array.iter
    (fun x ->
      (* seed the charge, hold phi; then the reverse *)
      check_true "pooled d/dcharge"
        (rel_close ~tol:1e-6
           (Diff.richardson (fun c -> pooled ~charge:c ~phi:0.7) x)
           (Dual.d
              (Econ.Aggregate.pooled_throughput_d cps ~charge:(Dual.var x)
                 ~phi:(Dual.const 0.7))));
      check_true "pooled d/dphi"
        (rel_close ~tol:1e-6
           (Diff.richardson (fun phi -> pooled ~charge:0.3 ~phi) x)
           (Dual.d
              (Econ.Aggregate.pooled_throughput_d cps ~charge:(Dual.const 0.3)
                 ~phi:(Dual.var x)))))
    (draws ~lo:0.1 ~hi:1.8 (Rng.split rng) 6)

let test_order2_families () =
  let rng = Rng.create 15L in
  let cp = Econ.Cp.exponential ~m0:1.2 ~l0:0.9 ~alpha:2.5 ~beta:1.5 ~value:1. () in
  Array.iter
    (fun x ->
      let pop = Econ.Cp.population_d2 cp (Dual.Order2.var x) in
      check_true "population dd vs stencil"
        (rel_close ~tol:1e-4
           (Diff.second (Econ.Cp.population cp) x)
           (Dual.Order2.dd pop));
      let rate = Econ.Cp.rate_d2 cp (Dual.Order2.var x) in
      check_true "rate dd vs stencil"
        (rel_close ~tol:1e-4
           (Diff.second (Econ.Cp.rate cp) x)
           (Dual.Order2.dd rate)))
    (draws ~lo:0.1 ~hi:1.5 (Rng.split rng) 6)

let test_elasticity_exact () =
  let d = Econ.Demand.exponential ~m0:1. ~alpha:2.1 () in
  List.iter
    (fun t ->
      check_true "exact vs numeric elasticity"
        (rel_close ~tol:1e-6
           (Econ.Elasticity.numeric (Econ.Demand.population d) t)
           (Econ.Elasticity.exact (Econ.Demand.population_d d) t));
      (* the exponential family's t-elasticity is -alpha t exactly *)
      check_close ~tol:1e-12 "closed form"
        (-2.1 *. t)
        (Econ.Elasticity.exact (Econ.Demand.population_d d) t))
    [ 0.2; 0.9; 1.7 ]

let suite =
  ( "ad-pins",
    [
      quick "demand kernels: dual vs richardson" test_demand_families;
      quick "throughput kernels: dual vs richardson" test_throughput_families;
      quick "utilization kernels: dual vs richardson" test_utilization_families;
      quick "cp and pooled aggregate" test_cp_and_aggregate;
      quick "second-order kernels vs stencils" test_order2_families;
      quick "elasticity: exact vs numeric" test_elasticity_exact;
    ] )
