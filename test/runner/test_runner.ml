open Test_helpers

(* a tiny experiment whose [run] body is supplied by each test; every
   manifest field the supervisor derives is exercised through it *)
let synthetic ?(id = "synthetic") run =
  {
    Experiments.Common.id;
    title = "synthetic test experiment";
    paper_ref = "test/runner";
    run;
  }

let trivial_outcome ?(id = "synthetic") ?(checks = []) () =
  {
    Experiments.Common.id;
    title = "synthetic";
    tables = [];
    plots = [];
    shape_checks = checks;
  }

(* burns guarded objective evaluations so watchdog probes fire: each
   call costs a full root solve (tens of evals) *)
let solve_once () =
  match Numerics.Robust.root ~ctx:"test" (fun x -> (x *. x) -. 2.) ~lo:0. ~hi:2. with
  | Ok s -> s.Numerics.Robust.result.Numerics.Rootfind.root
  | Error e -> Alcotest.failf "unexpected solver error: %s" (Numerics.Robust.error_message e)

(* -- watchdog ------------------------------------------------------- *)

let test_limits_validation () =
  check_raises_invalid "negative deadline" (fun () ->
      Runner.Watchdog.limits ~deadline_s:(-1.) ());
  check_raises_invalid "nan deadline" (fun () ->
      Runner.Watchdog.limits ~deadline_s:Float.nan ());
  check_raises_invalid "zero eval budget" (fun () ->
      Runner.Watchdog.limits ~max_evals:0 ())

let test_no_limits_passthrough () =
  Alcotest.(check int) "plain value" 42 (Runner.Watchdog.guard Runner.Watchdog.no_limits (fun () -> 42))

let test_eval_budget_trips () =
  let lims = Runner.Watchdog.limits ~max_evals:5 () in
  match Runner.Watchdog.guard lims (fun () -> solve_once ()) with
  | _ -> Alcotest.fail "expected Eval_budget_exceeded"
  | exception Runner.Watchdog.Eval_budget_exceeded { evaluations; limit } ->
    Alcotest.(check int) "limit recorded" 5 limit;
    check_true "tripped at the limit" (evaluations >= limit)

let test_deadline_trips () =
  (* an already-expired deadline: the first probe must trip it *)
  let lims = Runner.Watchdog.limits ~deadline_s:1e-9 () in
  match
    Runner.Watchdog.guard lims (fun () ->
        for _ = 1 to 100 do
          ignore (solve_once ())
        done)
  with
  | () -> Alcotest.fail "expected Deadline_exceeded"
  | exception Runner.Watchdog.Deadline_exceeded { elapsed_s; limit_s } ->
    check_close ~tol:1e-12 "limit recorded" 1e-9 limit_s;
    check_true "elapsed beyond limit" (elapsed_s >= limit_s)

let test_guard_uninstalls_probe () =
  let lims = Runner.Watchdog.limits ~max_evals:5 () in
  (match Runner.Watchdog.guard lims (fun () -> solve_once ()) with
  | _ -> Alcotest.fail "expected budget trip"
  | exception Runner.Watchdog.Eval_budget_exceeded _ -> ());
  (* after an exceptional exit the probe must be gone: unguarded
     solves run free of any budget *)
  for _ = 1 to 3 do
    ignore (solve_once ())
  done

(* -- manifest ------------------------------------------------------- *)

let entry ?(id = "e1") ?(status = Runner.Manifest.Completed) ?(shape_passed = 2)
    ?(shape_total = 2) ?(failed_checks = []) () =
  {
    Runner.Manifest.id;
    status;
    duration_s = 1.25;
    attempts = 2;
    shape_passed;
    shape_total;
    failed_checks;
    degraded_samples = 3;
    exit_reason = "completed";
    finished_unix = 1700000000.;
  }

let test_manifest_roundtrip () =
  let entries =
    [
      entry ~id:"ok" ();
      entry ~id:"bad" ~status:(Runner.Manifest.Failed { exn = "Failure(\"x\")"; backtrace = "bt" }) ();
      entry ~id:"slow" ~status:(Runner.Manifest.Timed_out { limit_s = 2.5 }) ();
      entry ~id:"hungry" ~status:(Runner.Manifest.Out_of_budget { limit = 99 }) ();
      entry ~id:"partial" ~shape_passed:1 ~failed_checks:[ "monotone" ] ();
    ]
  in
  let m = List.fold_left Runner.Manifest.set (Runner.Manifest.empty ()) entries in
  match Runner.Manifest.of_json (Runner.Manifest.to_json m) with
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg
  | Ok m' ->
    Alcotest.(check int) "entry count" 5 (List.length (Runner.Manifest.entries m'));
    List.iter
      (fun e ->
        match Runner.Manifest.find m' e.Runner.Manifest.id with
        | None -> Alcotest.failf "entry %s lost" e.Runner.Manifest.id
        | Some e' -> check_true ("entry " ^ e.Runner.Manifest.id ^ " survives") (e = e'))
      entries

let test_manifest_successful () =
  check_true "completed + all checks" (Runner.Manifest.successful (entry ()));
  check_true "failing check not successful"
    (not (Runner.Manifest.successful (entry ~shape_passed:1 ~failed_checks:[ "m" ] ())));
  check_true "timed out not successful"
    (not
       (Runner.Manifest.successful
          (entry ~status:(Runner.Manifest.Timed_out { limit_s = 1. }) ())))

let test_manifest_set_replaces () =
  let m = Runner.Manifest.set (Runner.Manifest.empty ()) (entry ~id:"x" ()) in
  let m = Runner.Manifest.set m { (entry ~id:"x" ()) with Runner.Manifest.attempts = 9 } in
  Alcotest.(check int) "one entry" 1 (List.length (Runner.Manifest.entries m));
  match Runner.Manifest.find m "x" with
  | Some e -> Alcotest.(check int) "replaced" 9 e.Runner.Manifest.attempts
  | None -> Alcotest.fail "entry lost"

let test_manifest_disk () =
  let dir = Filename.temp_file "manifest" "" in
  Sys.remove dir;
  let path = Filename.concat dir "run.json" in
  (* missing file: an empty manifest, not an error *)
  (match Runner.Manifest.load ~path with
  | Ok m -> Alcotest.(check int) "missing -> empty" 0 (List.length (Runner.Manifest.entries m))
  | Error msg -> Alcotest.failf "missing file should load empty: %s" msg);
  let m = Runner.Manifest.set (Runner.Manifest.empty ()) (entry ()) in
  Runner.Manifest.save ~path m;
  check_true "no temp left" (not (Sys.file_exists (path ^ ".tmp")));
  (match Runner.Manifest.load ~path with
  | Ok m' -> check_true "disk round-trip" (Runner.Manifest.find m' "e1" <> None)
  | Error msg -> Alcotest.failf "load failed: %s" msg);
  (* corrupt file: a located Error, not an exception *)
  let oc = open_out path in
  output_string oc "{ not json";
  close_out oc;
  match Runner.Manifest.load ~path with
  | Ok _ -> Alcotest.fail "expected Error on corrupt manifest"
  | Error msg -> check_true "error names the path" (String.length msg > String.length path)

let test_manifest_lenient_salvage () =
  let dir = Filename.temp_file "manifest_torn" "" in
  Sys.remove dir;
  let path = Filename.concat dir "run.json" in
  let m =
    List.fold_left Runner.Manifest.set (Runner.Manifest.empty ())
      [ entry ~id:"keep1" (); entry ~id:"keep2" (); entry ~id:"torn-tail" () ]
  in
  Runner.Manifest.save ~path m;
  (* tear the file partway through the final record, as a power loss
     mid-write would *)
  let full =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let cut =
    let needle = "torn-tail" in
    let rec find i =
      if i + String.length needle > String.length full then
        Alcotest.fail "torn-tail entry not in the saved manifest"
      else if String.sub full i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 cut);
  close_out oc;
  (* strict load refuses the damage... *)
  (match Runner.Manifest.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "strict load accepted a truncated manifest");
  (* ...lenient load salvages every complete entry and warns *)
  let warnings = ref [] in
  match Runner.Manifest.load_lenient ~path ~on_warning:(fun w -> warnings := w :: !warnings) with
  | Error msg -> Alcotest.failf "lenient load failed: %s" msg
  | Ok m' ->
    check_true "dropped tail warned" (!warnings <> []);
    check_true "keep1 salvaged" (Runner.Manifest.find m' "keep1" <> None);
    check_true "keep2 salvaged" (Runner.Manifest.find m' "keep2" <> None);
    check_true "torn entry dropped" (Runner.Manifest.find m' "torn-tail" = None)

(* -- supervisor ----------------------------------------------------- *)

let test_supervise_completion () =
  let checks =
    [
      Experiments.Common.check ~name:"pass" true "fine";
      Experiments.Common.check ~name:"fail" false "not fine";
    ]
  in
  let e = synthetic (fun () -> trivial_outcome ~checks ()) in
  let { Runner.Supervisor.entry; outcome } = Runner.Supervisor.supervise e in
  check_true "outcome present" (outcome <> None);
  Alcotest.(check int) "1 attempt" 1 entry.Runner.Manifest.attempts;
  Alcotest.(check int) "shape passed" 1 entry.Runner.Manifest.shape_passed;
  Alcotest.(check int) "shape total" 2 entry.Runner.Manifest.shape_total;
  check_true "failed check named" (entry.Runner.Manifest.failed_checks = [ "fail" ]);
  check_true "not successful with failing check" (not (Runner.Manifest.successful entry))

let test_supervise_contains_crash () =
  let e = synthetic (fun () -> failwith "boom") in
  let { Runner.Supervisor.entry; outcome } = Runner.Supervisor.supervise e in
  check_true "no outcome" (outcome = None);
  (match entry.Runner.Manifest.status with
  | Runner.Manifest.Failed { exn; _ } -> check_true "exn recorded" (exn = "Failure(\"boom\")")
  | _ -> Alcotest.fail "expected Failed status");
  check_true "not successful" (not (Runner.Manifest.successful entry))

let test_supervise_times_out () =
  let lims = Runner.Watchdog.limits ~deadline_s:1e-9 () in
  let e =
    synthetic (fun () ->
        for _ = 1 to 100 do
          ignore (solve_once ())
        done;
        trivial_outcome ())
  in
  let { Runner.Supervisor.entry; outcome } = Runner.Supervisor.supervise ~limits:lims e in
  check_true "no outcome" (outcome = None);
  match entry.Runner.Manifest.status with
  | Runner.Manifest.Timed_out { limit_s } -> check_close ~tol:1e-12 "limit" 1e-9 limit_s
  | _ -> Alcotest.fail "expected Timed_out status"

let solver_error () =
  Numerics.Robust.Solver_error
    { Numerics.Robust.attempts = []; last_residual = Float.nan; bracket_history = [] }

let test_supervise_retries_retryable () =
  let calls = ref 0 in
  let slept = ref [] in
  let e =
    synthetic (fun () ->
        incr calls;
        if !calls < 3 then raise (solver_error ()) else trivial_outcome ())
  in
  let retry = Runner.Supervisor.retry ~max_attempts:5 ~backoff_s:0.25 () in
  let { Runner.Supervisor.entry; outcome } =
    Runner.Supervisor.supervise ~retry ~sleep:(fun s -> slept := s :: !slept) e
  in
  check_true "eventually completed" (outcome <> None);
  Alcotest.(check int) "3 attempts recorded" 3 entry.Runner.Manifest.attempts;
  check_true "exponential backoff" (List.rev !slept = [ 0.25; 0.5 ])

let test_backoff_delay_schedule () =
  let retry = Runner.Supervisor.retry ~max_attempts:5 ~backoff_s:0.25 () in
  check_close "first retry" 0.25 (Runner.Supervisor.backoff_delay retry ~attempt:1);
  check_close "doubles" 0.5 (Runner.Supervisor.backoff_delay retry ~attempt:2);
  check_close "doubles again" 1.0 (Runner.Supervisor.backoff_delay retry ~attempt:3);
  check_raises_invalid "attempt must be 1-based" (fun () ->
      Runner.Supervisor.backoff_delay retry ~attempt:0);
  (* without an rng the schedule ignores jitter entirely *)
  let jittered = Runner.Supervisor.retry ~max_attempts:5 ~backoff_s:0.25 ~jitter:0.5 () in
  check_close "no rng, no jitter" 0.25 (Runner.Supervisor.backoff_delay jittered ~attempt:1)

let test_backoff_jitter_seeded () =
  let retry = Runner.Supervisor.retry ~max_attempts:5 ~backoff_s:0.25 ~jitter:0.5 () in
  let delays seed =
    let rng = Numerics.Rng.create seed in
    List.map (fun attempt -> Runner.Supervisor.backoff_delay ~rng retry ~attempt) [ 1; 2; 3 ]
  in
  let a = delays 11L in
  check_true "seeded replay reproduces the delays" (a = delays 11L);
  check_true "a different stream de-synchronizes" (a <> delays 12L);
  check_true "jitter actually moves the schedule" (a <> [ 0.25; 0.5; 1.0 ]);
  List.iteri
    (fun i d ->
      let base = 0.25 *. (2. ** float_of_int i) in
      check_in_range
        (Printf.sprintf "delay %d inside the jitter band" (i + 1))
        ~lo:(0.5 *. base) ~hi:(1.5 *. base) d)
    a

let test_retry_validation () =
  check_raises_invalid "jitter above 1" (fun () -> Runner.Supervisor.retry ~jitter:1.5 ());
  check_raises_invalid "negative jitter" (fun () -> Runner.Supervisor.retry ~jitter:(-0.1) ())

let test_supervise_jittered_backoff () =
  let run seed =
    let calls = ref 0 in
    let slept = ref [] in
    let e =
      synthetic (fun () ->
          incr calls;
          if !calls < 3 then raise (solver_error ()) else trivial_outcome ())
    in
    let retry = Runner.Supervisor.retry ~max_attempts:5 ~backoff_s:0.25 ~jitter:0.5 () in
    let { Runner.Supervisor.outcome; _ } =
      Runner.Supervisor.supervise ~retry ~rng:(Numerics.Rng.create seed)
        ~sleep:(fun s -> slept := s :: !slept)
        e
    in
    check_true "eventually completed" (outcome <> None);
    List.rev !slept
  in
  let slept = run 21L in
  Alcotest.(check int) "two sleeps" 2 (List.length slept);
  check_true "supervise replays the jittered schedule" (slept = run 21L);
  List.iteri
    (fun i d ->
      let base = 0.25 *. (2. ** float_of_int i) in
      check_in_range "sleep inside the jitter band" ~lo:(0.5 *. base) ~hi:(1.5 *. base) d)
    slept

let test_supervise_does_not_retry_crash () =
  let calls = ref 0 in
  let e =
    synthetic (fun () ->
        incr calls;
        failwith "not retryable")
  in
  let retry = Runner.Supervisor.retry ~max_attempts:5 ~backoff_s:0.01 () in
  let { Runner.Supervisor.entry = _; outcome } =
    Runner.Supervisor.supervise ~retry ~sleep:(fun _ -> ()) e
  in
  check_true "no outcome" (outcome = None);
  Alcotest.(check int) "single attempt" 1 !calls

let test_supervise_exhausts_retries () =
  let calls = ref 0 in
  let e =
    synthetic (fun () ->
        incr calls;
        raise (solver_error ()))
  in
  let retry = Runner.Supervisor.retry ~max_attempts:3 ~backoff_s:0.01 () in
  let { Runner.Supervisor.entry; outcome } =
    Runner.Supervisor.supervise ~retry ~sleep:(fun _ -> ()) e
  in
  check_true "no outcome" (outcome = None);
  Alcotest.(check int) "all attempts spent" 3 !calls;
  Alcotest.(check int) "attempts recorded" 3 entry.Runner.Manifest.attempts

(* -- sweep + resume ------------------------------------------------- *)

let test_sweep_resume () =
  let dir = Filename.temp_file "sweep" "" in
  Sys.remove dir;
  let path = Filename.concat dir "run.json" in
  let good_runs = ref 0 and bad_runs = ref 0 in
  let good =
    synthetic ~id:"good" (fun () ->
        incr good_runs;
        trivial_outcome ~id:"good" ())
  in
  let bad =
    synthetic ~id:"bad" (fun () ->
        incr bad_runs;
        failwith "always broken")
  in
  (match Runner.Supervisor.sweep ~manifest_path:path [ good; bad ] with
  | Error msg -> Alcotest.failf "sweep failed: %s" msg
  | Ok { Runner.Supervisor.ran; skipped; failed; _ } ->
    Alcotest.(check int) "ran both" 2 ran;
    Alcotest.(check int) "skipped none" 0 skipped;
    Alcotest.(check int) "one failed" 1 failed);
  (* resume: the successful entry is skipped, the failure re-runs *)
  (match Runner.Supervisor.sweep ~manifest_path:path ~resume:true [ good; bad ] with
  | Error msg -> Alcotest.failf "resume failed: %s" msg
  | Ok { Runner.Supervisor.ran; skipped; failed; _ } ->
    Alcotest.(check int) "re-ran only the failure" 1 ran;
    Alcotest.(check int) "skipped the success" 1 skipped;
    Alcotest.(check int) "still one failed" 1 failed);
  Alcotest.(check int) "good ran once" 1 !good_runs;
  Alcotest.(check int) "bad ran twice" 2 !bad_runs;
  (* a corrupt manifest is a load Error, not a silent fresh start *)
  let oc = open_out path in
  output_string oc "garbage";
  close_out oc;
  match Runner.Supervisor.sweep ~manifest_path:path ~resume:true [ good ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error on corrupt manifest"

let test_sweep_events () =
  let events = ref [] in
  let e = synthetic (fun () -> trivial_outcome ()) in
  (match
     Runner.Supervisor.sweep ~on_event:(fun ev -> events := ev :: !events) [ e ]
   with
  | Error msg -> Alcotest.failf "sweep failed: %s" msg
  | Ok _ -> ());
  match List.rev !events with
  | [ Runner.Supervisor.Started { id; attempt = 1 }; Runner.Supervisor.Finished _ ] ->
    Alcotest.(check string) "started id" "synthetic" id
  | evs -> Alcotest.failf "unexpected event sequence (%d events)" (List.length evs)

(* -- chaos (smoke: one scenario x one cheap synthetic experiment) --- *)

let test_chaos_contains_faults () =
  let e =
    synthetic ~id:"solve" (fun () ->
        ignore (solve_once ());
        trivial_outcome ~id:"solve" ())
  in
  let scenarios =
    [
      { Runner.Chaos.name = "nan-region";
        mode = Numerics.Fault.Nan_region { lo = 0.25; hi = 0.35 } };
      { Runner.Chaos.name = "budget"; mode = Numerics.Fault.Budget 10 };
    ]
  in
  let limits = Runner.Watchdog.limits ~deadline_s:10. () in
  let report = Runner.Chaos.run ~limits ~scenarios ~experiments:[ e ] () in
  Alcotest.(check int) "two verdicts" 2 (List.length report.Runner.Chaos.verdicts);
  check_true "all contained" report.Runner.Chaos.ok;
  List.iter
    (fun v ->
      check_true
        (Printf.sprintf "%s injected evals counted" v.Runner.Chaos.scenario)
        (v.Runner.Chaos.injected_evals > 0))
    report.Runner.Chaos.verdicts;
  (* the global fault must be cleared afterwards *)
  check_true "global fault cleared" (Numerics.Fault.global_mode () = None)

let suite =
  ( "runner",
    [
      quick "limits validation" test_limits_validation;
      quick "no_limits passthrough" test_no_limits_passthrough;
      quick "eval budget trips" test_eval_budget_trips;
      quick "deadline trips" test_deadline_trips;
      quick "guard uninstalls probe" test_guard_uninstalls_probe;
      quick "manifest json roundtrip" test_manifest_roundtrip;
      quick "manifest successful" test_manifest_successful;
      quick "manifest set replaces" test_manifest_set_replaces;
      quick "manifest disk io" test_manifest_disk;
      quick "manifest lenient load salvages a torn tail" test_manifest_lenient_salvage;
      quick "supervise completion" test_supervise_completion;
      quick "supervise contains crash" test_supervise_contains_crash;
      quick "supervise times out" test_supervise_times_out;
      quick "supervise retries retryable" test_supervise_retries_retryable;
      quick "backoff delay schedule" test_backoff_delay_schedule;
      quick "backoff jitter is seeded and bounded" test_backoff_jitter_seeded;
      quick "retry validation" test_retry_validation;
      quick "supervise jittered backoff replays" test_supervise_jittered_backoff;
      quick "supervise no retry on crash" test_supervise_does_not_retry_crash;
      quick "supervise exhausts retries" test_supervise_exhausts_retries;
      quick "sweep + resume" test_sweep_resume;
      quick "sweep events" test_sweep_events;
      quick "chaos contains faults" test_chaos_contains_faults;
    ] )

let () = Alcotest.run "runner" [ suite ]
