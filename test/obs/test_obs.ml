(* Instrumentation suite: span nesting and exception safety, histogram
   percentile math against known distributions, counter label merging,
   trace/metrics JSON round-trips through the parser, and an
   integration check that a Nash solve on the paper's fig7 game leaves
   spans for every layer of the equilibrium pipeline. *)

open Test_helpers

let with_tracing f =
  Obs.Trace.clear ();
  Obs.Trace.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Trace.set_enabled false; Obs.Trace.clear ()) f

let span_named name =
  List.filter (fun s -> s.Obs.Trace.name = name) (Obs.Trace.spans ())

(* ------------------------------------------------------------------ *)
(* clock *)

let test_clock_monotone () =
  let samples = Array.init 1000 (fun _ -> Obs.Clock.now ()) in
  Array.iteri
    (fun i t -> if i > 0 then check_true "clock never decreases" (t >= samples.(i - 1)))
    samples;
  check_true "elapsed non-negative" (Obs.Clock.elapsed ~since:(Obs.Clock.now ()) >= 0.);
  check_close ~tol:1e-9 "us conversion" 2.5e6 (Obs.Clock.us_of_s 2.5)

(* ------------------------------------------------------------------ *)
(* metrics *)

let test_counter_label_merging () =
  Obs.Metrics.reset ~prefix:"t.merge." ();
  let a = Obs.Metrics.counter ~labels:[ ("x", "1"); ("y", "2") ] "t.merge.c" in
  (* same label set, opposite order: must be the same series *)
  let b = Obs.Metrics.counter ~labels:[ ("y", "2"); ("x", "1") ] "t.merge.c" in
  let other = Obs.Metrics.counter ~labels:[ ("x", "1"); ("y", "3") ] "t.merge.c" in
  Obs.Metrics.incr a;
  Obs.Metrics.incr ~by:2. b;
  Obs.Metrics.incr ~by:10. other;
  check_close "merged handle sees both increments" 3. (Obs.Metrics.counter_value a);
  check_close "distinct labels stay distinct" 10. (Obs.Metrics.counter_value other);
  check_close "sum over series" 13. (Obs.Metrics.sum_counters "t.merge.c");
  check_close "filtered sum" 3.
    (Obs.Metrics.sum_counters
       ~where:(fun labels -> Obs.Metrics.label labels "y" = Some "2")
       "t.merge.c")

let test_kind_conflict () =
  let _ = Obs.Metrics.counter "t.kind.c" in
  check_raises_invalid "re-registering as gauge" (fun () -> Obs.Metrics.gauge "t.kind.c")

let test_reset_in_place () =
  let c = Obs.Metrics.counter "t.reset.c" in
  Obs.Metrics.incr ~by:5. c;
  Obs.Metrics.reset ~prefix:"t.reset." ();
  check_close "zeroed" 0. (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  check_close "handle still live after reset" 1. (Obs.Metrics.counter_value c)

let test_histogram_percentiles_uniform () =
  Obs.Metrics.reset ~prefix:"t.hist." ();
  let h = Obs.Metrics.histogram "t.hist.uniform" in
  (* 1..1000 uniformly: p50 = 500, p90 = 900, p99 = 990; log-bucket
     resolution is 24/decade so answers must land within ~10% *)
  for i = 1 to 1000 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  let rel_close msg expected actual =
    if Float.abs (actual -. expected) > 0.10 *. expected then
      Alcotest.failf "%s: expected ~%g, got %g" msg expected actual
  in
  rel_close "p50 of 1..1000" 500. (Obs.Metrics.percentile h 50.);
  rel_close "p90 of 1..1000" 900. (Obs.Metrics.percentile h 90.);
  rel_close "p99 of 1..1000" 990. (Obs.Metrics.percentile h 99.);
  check_close "p0 clamps to min" 1. (Obs.Metrics.percentile h 0.);
  check_close "p100 clamps to max" 1000. (Obs.Metrics.percentile h 100.);
  let s = Obs.Metrics.summarize h in
  Alcotest.(check int) "count" 1000 s.Obs.Metrics.count;
  check_close "sum" 500500. s.Obs.Metrics.sum;
  check_close "min" 1. s.Obs.Metrics.min;
  check_close "max" 1000. s.Obs.Metrics.max

let test_histogram_percentiles_bimodal () =
  let h = Obs.Metrics.histogram "t.hist.bimodal" in
  (* 90 samples at ~1ms, 10 at ~1s: p50 must sit in the fast mode,
     p99 in the slow one — the property that localizes a slow tail *)
  for _ = 1 to 90 do
    Obs.Metrics.observe h 1e-3
  done;
  for _ = 1 to 10 do
    Obs.Metrics.observe h 1.0
  done;
  check_in_range "p50 in fast mode" ~lo:0.8e-3 ~hi:1.2e-3 (Obs.Metrics.percentile h 50.);
  check_in_range "p99 in slow mode" ~lo:0.8 ~hi:1.2 (Obs.Metrics.percentile h 99.);
  let empty = Obs.Metrics.histogram "t.hist.empty" in
  check_true "empty histogram percentile is nan"
    (Float.is_nan (Obs.Metrics.percentile empty 50.))

let test_histogram_underflow () =
  let h = Obs.Metrics.histogram "t.hist.underflow" in
  Obs.Metrics.observe h 0.;
  Obs.Metrics.observe h 5.;
  let s = Obs.Metrics.summarize h in
  Alcotest.(check int) "zero-valued samples counted" 2 s.Obs.Metrics.count;
  check_close "p25 resolves to min" 0. (Obs.Metrics.percentile h 25.)

(* ------------------------------------------------------------------ *)
(* tracing *)

let test_span_nesting () =
  with_tracing @@ fun () ->
  let r =
    Obs.Trace.with_span "outer" (fun () ->
        Obs.Trace.with_span "inner.a" (fun () -> ()) ;
        Obs.Trace.with_span "inner.b" (fun () -> 17))
  in
  Alcotest.(check int) "thunk result propagates" 17 r;
  let spans = Obs.Trace.spans () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let outer = List.hd (span_named "outer") in
  let a = List.hd (span_named "inner.a") in
  let b = List.hd (span_named "inner.b") in
  Alcotest.(check (option int)) "outer is a root" None outer.Obs.Trace.parent;
  Alcotest.(check (option int)) "a nests under outer" (Some outer.Obs.Trace.id) a.Obs.Trace.parent;
  Alcotest.(check (option int)) "b nests under outer" (Some outer.Obs.Trace.id) b.Obs.Trace.parent;
  (* ordering: sorted by start, parents first; ids reflect open order *)
  check_true "outer starts first" (outer.Obs.Trace.start <= a.Obs.Trace.start);
  check_true "a starts before b" (a.Obs.Trace.id < b.Obs.Trace.id);
  check_true "a closes before b opens" (a.Obs.Trace.stop <= b.Obs.Trace.start);
  check_true "outer closes last" (outer.Obs.Trace.stop >= b.Obs.Trace.stop);
  Alcotest.(check (list string)) "sorted order is outer, a, b"
    [ "outer"; "inner.a"; "inner.b" ]
    (List.map (fun s -> s.Obs.Trace.name) spans)

let test_span_disabled_is_free () =
  Obs.Trace.clear ();
  Obs.Trace.set_enabled false;
  let r = Obs.Trace.with_span "ghost" (fun () -> 3) in
  Alcotest.(check int) "thunk still runs" 3 r;
  Alcotest.(check int) "no spans buffered" 0 (List.length (Obs.Trace.spans ()))

let test_span_closed_on_exception () =
  with_tracing @@ fun () ->
  (try Obs.Trace.with_span "boom" (fun () -> failwith "bang") with Failure _ -> ());
  match span_named "boom" with
  | [ s ] ->
    check_true "stop recorded despite the raise" (not (Float.is_nan s.Obs.Trace.stop));
    Alcotest.(check (option string)) "stack unwound" None (Obs.Trace.current ())
  | other -> Alcotest.failf "expected 1 completed span, got %d" (List.length other)

let test_span_attrs () =
  with_tracing @@ fun () ->
  Obs.Trace.with_span ~attrs:[ ("k", "v") ] "tagged" (fun () ->
      Obs.Trace.add_attr "extra" "1");
  let s = List.hd (span_named "tagged") in
  Alcotest.(check (option string)) "static attr" (Some "v")
    (List.assoc_opt "k" s.Obs.Trace.attrs);
  Alcotest.(check (option string)) "dynamic attr" (Some "1")
    (List.assoc_opt "extra" s.Obs.Trace.attrs)

(* ------------------------------------------------------------------ *)
(* JSON round trips *)

let test_json_round_trip () =
  let v =
    Obs.Json.(
      Obj
        [
          ("s", Str "quote \" backslash \\ newline \n unicode \xc3\xa9");
          ("n", Num 1.5);
          ("i", Num 42.);
          ("neg", Num (-0.125));
          ("b", Bool true);
          ("null", Null);
          ("arr", Arr [ Num 1.; Str "two"; Obj [ ("deep", Bool false) ] ]);
          ("empty_arr", Arr []);
          ("empty_obj", Obj []);
        ])
  in
  let reparsed = Obs.Json.of_string (Obs.Json.to_string v) in
  check_true "compact round trip is identity" (reparsed = v);
  let reparsed_pretty = Obs.Json.of_string (Obs.Json.to_string ~pretty:true v) in
  check_true "pretty round trip is identity" (reparsed_pretty = v);
  (match Obs.Json.of_string {| {"a": [1, 2.5e2, -3], "bA": "é😀"} |} with
  | Obs.Json.Obj [ ("a", Obs.Json.Arr [ _; Obs.Json.Num x; _ ]); (key, _) ] ->
    check_close "exponent parsed" 250. x;
    Alcotest.(check string) "escaped key decoded" "b\x41" key
  | _ -> Alcotest.fail "unexpected parse shape");
  check_raises_invalid "trailing garbage rejected" (fun () ->
      try Obs.Json.of_string "{} junk"
      with Obs.Json.Parse_error _ -> invalid_arg "ok")

let test_trace_json_round_trip () =
  with_tracing (fun () ->
      Obs.Trace.with_span "root" (fun () ->
          Obs.Trace.with_span ~attrs:[ ("p", "0.8") ] "child" (fun () -> ()));
      let doc = Obs.Export.trace_json () in
      let reparsed = Obs.Json.of_string (Obs.Json.to_string doc) in
      match Option.bind (Obs.Json.member "traceEvents" reparsed) Obs.Json.to_list with
      | Some events ->
        Alcotest.(check int) "one event per span" 2 (List.length events);
        List.iter
          (fun e ->
            check_true "ts present"
              (Option.is_some (Option.bind (Obs.Json.member "ts" e) Obs.Json.to_float));
            check_true "dur present"
              (Option.is_some (Option.bind (Obs.Json.member "dur" e) Obs.Json.to_float)))
          events
      | None -> Alcotest.fail "traceEvents missing after round trip")

let test_metrics_json_round_trip () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter ~labels:[ ("layer", "t") ] "t.json.c" in
  Obs.Metrics.incr ~by:7. c;
  let h = Obs.Metrics.histogram "t.json.h" in
  Obs.Metrics.observe h 0.5;
  let doc = Obs.Export.metrics_json ~prefix:"t.json." () in
  let reparsed = Obs.Json.of_string (Obs.Json.to_string doc) in
  match Option.bind (Obs.Json.member "series" reparsed) Obs.Json.to_list with
  | Some series ->
    Alcotest.(check int) "two series survive the round trip" 2 (List.length series)
  | None -> Alcotest.fail "series missing after round trip"

(* ------------------------------------------------------------------ *)
(* integration: the equilibrium pipeline leaves a full trace *)

let test_nash_trace_all_layers () =
  let game =
    Subsidization.Subsidy_game.make
      (Subsidization.Scenario.fig7_11_system ())
      ~price:0.8 ~cap:1.0
  in
  Numerics.Robust.reset_stats ();
  with_tracing @@ fun () ->
  let eq = Obs.Trace.with_span "experiment:test" (fun () -> Subsidization.Nash.solve game) in
  check_true "equilibrium converged" eq.Subsidization.Nash.converged;
  (* every layer of the pipeline must have produced spans... *)
  let count name = List.length (span_named name) in
  check_true "nash.solve span" (count "nash.solve" = 1);
  check_true "best_response.solve span" (count "best_response.solve" = 1);
  check_true "equilibrium solve spans" (count "system.equilibrium_phi" > 0);
  (* ...nested in pipeline order *)
  let by_id =
    List.fold_left
      (fun acc s -> (s.Obs.Trace.id, s) :: acc)
      [] (Obs.Trace.spans ())
  in
  let rec ancestors (s : Obs.Trace.span) =
    match s.Obs.Trace.parent with
    | None -> []
    | Some p ->
      let parent = List.assoc p by_id in
      parent.Obs.Trace.name :: ancestors parent
  in
  let phi = List.hd (span_named "system.equilibrium_phi") in
  let chain = ancestors phi in
  check_true "equilibrium nests under best_response"
    (List.mem "best_response.solve" chain);
  check_true "equilibrium nests under nash.solve" (List.mem "nash.solve" chain);
  check_true "equilibrium nests under the experiment root"
    (List.mem "experiment:test" chain);
  (* and the registry must agree with the legacy facade *)
  let stats = Numerics.Robust.stats () in
  check_close "per-layer counters sum to the facade total"
    (float_of_int stats.Numerics.Robust.root_calls)
    (Obs.Metrics.sum_counters "solver.root.calls");
  check_true "utilization layer labelled"
    (Obs.Metrics.sum_counters
       ~where:(fun labels -> Obs.Metrics.label labels "layer" = Some "utilization")
       "solver.root.calls"
    > 0.)

(* the satellite fix: Common.run scopes solver telemetry per run *)
let test_per_run_stats_scoping () =
  let fig4 = Experiments.Registry.find_exn "fig4" in
  let _ = Experiments.Common.run fig4 in
  let first = (Numerics.Robust.stats ()).Numerics.Robust.root_calls in
  check_true "fig4 does root solves" (first > 0);
  let _ = Experiments.Common.run fig4 in
  let second = (Numerics.Robust.stats ()).Numerics.Robust.root_calls in
  Alcotest.(check int) "second run reports its own count, not the running total"
    first second;
  (* opt-out keeps the old cumulative behaviour *)
  let _ = Experiments.Common.run ~isolate_stats:false fig4 in
  let third = (Numerics.Robust.stats ()).Numerics.Robust.root_calls in
  Alcotest.(check int) "isolate_stats:false accumulates" (2 * first) third

(* ------------------------------------------------------------------ *)
(* log *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let with_log_capture f =
  let events = ref [] in
  Obs.Log.reset ();
  Obs.Log.set_sink (Obs.Log.Custom (fun e -> events := e :: !events));
  Fun.protect ~finally:Obs.Log.reset (fun () -> f events)

let test_log_levels () =
  with_log_capture (fun events ->
      Obs.Log.set_level Obs.Log.Warn;
      Obs.Log.info ~m:"a" "dropped";
      Obs.Log.warn ~m:"a" "kept";
      Obs.Log.set_module_level "chatty" Obs.Log.Debug;
      Obs.Log.debug ~m:"chatty" "kept too";
      Obs.Log.debug ~m:"quiet" "dropped too";
      check_true "module override enables"
        (Obs.Log.enabled ~m:"chatty" Obs.Log.Debug);
      check_true "default threshold filters"
        (not (Obs.Log.enabled ~m:"quiet" Obs.Log.Info));
      let msgs = List.rev_map (fun e -> e.Obs.Log.msg) !events in
      Alcotest.(check (list string)) "filtered stream" [ "kept"; "kept too" ] msgs)

let test_log_level_names () =
  List.iter
    (fun (name, expected) ->
      match Obs.Log.level_of_name name with
      | Ok l -> check_true ("parse " ^ name) (l = expected)
      | Error msg -> Alcotest.failf "parse %s: %s" name msg)
    [
      ("debug", Obs.Log.Debug);
      ("INFO", Obs.Log.Info);
      ("warn", Obs.Log.Warn);
      ("warning", Obs.Log.Warn);
      ("Error", Obs.Log.Error);
    ];
  check_true "garbage rejected"
    (match Obs.Log.level_of_name "loud" with Error _ -> true | Ok _ -> false)

let test_log_rate_limit () =
  with_log_capture (fun events ->
      Obs.Log.set_rate_limit ~min_interval_s:3600. ();
      for i = 1 to 5 do
        Obs.Log.warn ~m:"flood" "same line" ~fields:[ ("i", string_of_int i) ]
      done;
      (* a different message is a different key, not a repeat *)
      Obs.Log.warn ~m:"flood" "other line";
      Alcotest.(check int) "first per key emits, repeats coalesce" 2
        (List.length !events);
      Obs.Log.drain ();
      Alcotest.(check int) "drain flushes the coalesced tail" 3
        (List.length !events);
      let flushed =
        List.find (fun e -> e.Obs.Log.repeats > 0) !events
      in
      Alcotest.(check int) "four suppressed repeats" 4 flushed.Obs.Log.repeats;
      Alcotest.(check (option string)) "last duplicate's fields win" (Some "5")
        (List.assoc_opt "i" flushed.Obs.Log.fields);
      Obs.Log.drain ();
      Alcotest.(check int) "drain is idempotent" 3 (List.length !events))

let test_log_jsonl_round_trip () =
  let e =
    {
      Obs.Log.t_s = 12.5;
      level = Obs.Log.Error;
      module_ = "srv";
      msg = "boom \"quoted\"\nnewline";
      fields = [ ("k", "v w") ];
      repeats = 3;
    }
  in
  let json = Obs.Json.of_string (Obs.Log.render_jsonl e) in
  let str name =
    match Obs.Json.member name json with Some (Obs.Json.Str s) -> s | _ -> ""
  in
  Alcotest.(check string) "level" "error" (str "level");
  Alcotest.(check string) "module" "srv" (str "m");
  Alcotest.(check string) "message survives escaping" e.Obs.Log.msg (str "msg");
  (match Obs.Json.member "repeats" json with
  | Some (Obs.Json.Num n) -> check_close "repeats" 3. n
  | _ -> Alcotest.fail "repeats field missing");
  (match Obs.Json.member "fields" json with
  | Some (Obs.Json.Obj [ ("k", Obs.Json.Str v) ]) ->
    Alcotest.(check string) "field value" "v w" v
  | _ -> Alcotest.fail "fields object missing");
  (* human rendering stays single-line even for multi-line messages *)
  let human = Obs.Log.render_human { e with msg = "boom" } in
  check_true "human line mentions module" (contains human "srv: boom")

(* ------------------------------------------------------------------ *)
(* series *)

let test_series_wraparound () =
  let s = Obs.Series.create ~capacity:4 () in
  for i = 1 to 6 do
    Obs.Series.append s ~name:"x" ~t_s:(float_of_int i) (float_of_int (10 * i))
  done;
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "ring keeps the newest capacity points, oldest first"
    [ (3., 30.); (4., 40.); (5., 50.); (6., 60.) ]
    (Obs.Series.points s "x");
  Alcotest.(check (list string)) "names" [ "x" ] (Obs.Series.names s);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "unknown name is empty" [] (Obs.Series.points s "y")

let test_series_tick_rates () =
  Obs.Metrics.reset ~prefix:"t.series." ();
  let c = Obs.Metrics.counter "t.series.reqs" in
  let g = Obs.Metrics.gauge "t.series.depth" in
  let h = Obs.Metrics.histogram "t.series.lat" in
  let s = Obs.Series.create ~capacity:16 () in
  Obs.Metrics.set g 7.;
  Obs.Series.tick ~prefix:"t.series." ~now:100. s;
  (* first tick primes baselines: gauge recorded, no rates yet *)
  check_true "no rate after one tick"
    (Obs.Series.points s "t.series.reqs.rate" = []);
  Obs.Metrics.incr ~by:30. c;
  Obs.Metrics.observe h 1.0;
  Obs.Metrics.observe h 1.0;
  Obs.Series.tick ~prefix:"t.series." ~now:110. s;
  (match Obs.Series.points s "t.series.reqs.rate" with
  | [ (t, rate) ] ->
    check_close "rate timestamp" 110. t;
    check_close "counter delta over elapsed" 3. rate
  | pts -> Alcotest.failf "expected one rate point, got %d" (List.length pts));
  (match Obs.Series.points s "t.series.depth" with
  | (_, v0) :: _ -> check_close "gauge sampled" 7. v0
  | [] -> Alcotest.fail "gauge series missing");
  (match Obs.Series.points s "t.series.lat.p50" with
  | [ (_, p50) ] -> check_close ~tol:0.15 "histogram p50 track" 1.0 p50
  | pts -> Alcotest.failf "expected one p50 point, got %d" (List.length pts));
  (match Obs.Series.points s "t.series.lat.rate" with
  | [ (_, rate) ] -> check_close "histogram count rate" 0.2 rate
  | pts -> Alcotest.failf "expected one lat rate point, got %d" (List.length pts))

let test_series_window () =
  let s = Obs.Series.create ~capacity:32 () in
  List.iter
    (fun (t, v) -> Obs.Series.append s ~name:"w" ~t_s:t v)
    [ (0., 100.); (50., 2.); (55., 4.); (60., 6.) ];
  (match Obs.Series.window ~last_s:10. s "w" with
  | Some w ->
    Alcotest.(check int) "points in window" 3 w.Obs.Series.n;
    check_close "last" 6. w.Obs.Series.last;
    check_close "mean" 4. w.Obs.Series.mean;
    check_close "min" 2. w.Obs.Series.min;
    check_close "max" 6. w.Obs.Series.max
  | None -> Alcotest.fail "window empty");
  (match Obs.Series.window s "w" with
  | Some w -> Alcotest.(check int) "default window takes all" 4 w.Obs.Series.n
  | None -> Alcotest.fail "full window empty");
  check_true "unknown series has no window" (Obs.Series.window s "nope" = None)

let test_series_concurrent_ticks () =
  Obs.Metrics.reset ~prefix:"t.conc." ();
  let c = Obs.Metrics.counter "t.conc.reqs" in
  let s = Obs.Series.create ~capacity:8 () in
  let pool = Parallel.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      Parallel.Pool.run_tasks pool
        (Array.init 4 (fun k () ->
             for i = 1 to 50 do
               Obs.Metrics.incr c;
               Obs.Series.tick ~prefix:"t.conc."
                 ~now:(float_of_int ((100 * k) + i))
                 s;
               Obs.Series.append s ~name:"extra"
                 ~t_s:(float_of_int ((100 * k) + i))
                 (float_of_int i)
             done)));
  (* thread-safety smoke: bounded memory, consistent rings, no tearing *)
  List.iter
    (fun name ->
      let pts = Obs.Series.points s name in
      check_true ("capacity bound on " ^ name) (List.length pts <= 8);
      check_true ("timestamps finite in " ^ name)
        (List.for_all (fun (t, v) -> Float.is_finite t && Float.is_finite v) pts))
    (Obs.Series.names s);
  check_true "extra ring survived" (List.mem "extra" (Obs.Series.names s))

(* ------------------------------------------------------------------ *)
(* prometheus exposition *)

let prom_lines text = String.split_on_char '\n' text

let sample_value text line_prefix =
  match
    List.find_opt
      (fun l -> String.length l >= String.length line_prefix
                && String.sub l 0 (String.length line_prefix) = line_prefix)
      (prom_lines text)
  with
  | None -> Alcotest.failf "no sample starting with %S in:\n%s" line_prefix text
  | Some l -> (
    match String.rindex_opt l ' ' with
    | None -> Alcotest.failf "malformed sample line %S" l
    | Some i ->
      float_of_string (String.sub l (i + 1) (String.length l - i - 1)))

let test_prom_exposition () =
  Obs.Metrics.reset ~prefix:"t.prom." ();
  let c =
    Obs.Metrics.counter
      ~labels:[ ("z", "last"); ("a", {|qu"ote\back|} ^ "\nnl") ]
      "t.prom.hits"
  in
  Obs.Metrics.incr ~by:42. c;
  let g = Obs.Metrics.gauge "t.prom.depth" in
  Obs.Metrics.set g 3.5;
  let h = Obs.Metrics.histogram "t.prom.lat" in
  List.iter (Obs.Metrics.observe h) [ 0.001; 0.001; 0.1; 10. ];
  let text = Obs.Prom.expose ~prefix:"t.prom." () in
  (* names sanitized, TYPE lines present *)
  check_true "counter TYPE" (contains text "# TYPE t_prom_hits counter");
  check_true "gauge TYPE" (contains text "# TYPE t_prom_depth gauge");
  check_true "histogram TYPE" (contains text "# TYPE t_prom_lat histogram");
  (* label values escaped: backslash, quote, newline *)
  check_true "label escaping"
    (contains text {|a="qu\"ote\\back\nnl"|});
  (* labels render sorted (a before z) *)
  check_true "label ordering" (contains text {|t_prom_hits{a=|});
  check_close "counter value" 42. (sample_value text "t_prom_hits{");
  check_close "gauge value" 3.5 (sample_value text "t_prom_depth ");
  (* histogram: cumulative buckets, +Inf equals count, sum and count *)
  check_close "bucket cumulative count is total" 4.
    (sample_value text {|t_prom_lat_bucket{le="+Inf"}|});
  check_close "histogram count" 4. (sample_value text "t_prom_lat_count");
  check_close "histogram sum" 10.102 (sample_value text "t_prom_lat_sum");
  let bucket_counts =
    List.filter_map
      (fun l ->
        if
          String.length l > 18
          && String.sub l 0 18 = {|t_prom_lat_bucket{|}
        then
          String.rindex_opt l ' '
          |> Option.map (fun i ->
                 float_of_string (String.sub l (i + 1) (String.length l - i - 1)))
        else None)
      (prom_lines text)
  in
  check_true "at least underflow-free buckets + Inf" (List.length bucket_counts >= 2);
  check_true "bucket counts are non-decreasing"
    (fst
       (List.fold_left
          (fun (ok, prev) v -> (ok && v >= prev, v))
          (true, Float.neg_infinity) bucket_counts))

let test_prom_name_sanitization () =
  Alcotest.(check string) "dots to underscores" "service_requests_solved"
    (Obs.Prom.sanitize_name "service.requests.solved");
  Alcotest.(check string) "leading digit prefixed" "_9lives"
    (Obs.Prom.sanitize_name "9lives");
  Alcotest.(check string) "empty name" "_" (Obs.Prom.sanitize_name "");
  Alcotest.(check string) "escape" {|a\\b\"c\nd|}
    (Obs.Prom.escape_label_value "a\\b\"c\nd")

(* ------------------------------------------------------------------ *)
(* bench diff *)

let bench_record figs =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "bench.v1");
      ( "figures",
        Obs.Json.Arr
          (List.map
             (fun (id, seconds, roots, evals) ->
               Obs.Json.Obj
                 [
                   ("id", Obs.Json.Str id);
                   ("seconds", Obs.Json.Num seconds);
                   ("root_calls", Obs.Json.Num roots);
                   ("fixed_point_calls", Obs.Json.Num 3.);
                   ("objective_evaluations", Obs.Json.Num evals);
                 ])
             figs) );
    ]

let test_bench_diff_identical () =
  let r = bench_record [ ("fig4", 1.0, 1000., 5e4); ("fig7", 2.0, 2000., 9e4) ] in
  match Obs.Bench_diff.diff ~baseline:r ~current:r () with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
    check_true "identical records pass" (Obs.Bench_diff.ok report);
    Alcotest.(check int) "no regressions" 0
      (List.length (Obs.Bench_diff.regressions report));
    Alcotest.(check (list string)) "both figures compared" [ "fig4"; "fig7" ]
      (List.sort compare report.Obs.Bench_diff.compared)

let test_bench_diff_detects_slowdown () =
  let baseline = bench_record [ ("fig4", 1.0, 1000., 5e4); ("fig7", 2.0, 2000., 9e4) ] in
  let current =
    Obs.Bench_diff.scale_seconds baseline ~by:[ ("fig7", 2.0) ]
  in
  match Obs.Bench_diff.diff ~baseline ~current () with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
    check_true "2x slowdown fails the gate" (not (Obs.Bench_diff.ok report));
    (match Obs.Bench_diff.regressions report with
    | [ v ] ->
      Alcotest.(check string) "figure" "fig7" v.Obs.Bench_diff.figure;
      Alcotest.(check string) "metric" "seconds" v.Obs.Bench_diff.metric;
      check_close "current doubled" 4.0 v.Obs.Bench_diff.current;
      check_true "above the allowed band"
        (v.Obs.Bench_diff.current > v.Obs.Bench_diff.allowed)
    | vs -> Alcotest.failf "expected exactly one regression, got %d" (List.length vs));
    (* speedups never regress *)
    let faster = Obs.Bench_diff.scale_seconds baseline ~by:[ ("fig7", 0.25) ] in
    (match Obs.Bench_diff.diff ~baseline ~current:faster () with
    | Ok r -> check_true "faster is fine" (Obs.Bench_diff.ok r)
    | Error msg -> Alcotest.fail msg)

let test_bench_diff_counts_and_skew () =
  let baseline = bench_record [ ("fig4", 1.0, 1000., 5e4); ("gone", 1.0, 10., 10.) ] in
  let current = bench_record [ ("fig4", 1.0, 2000., 5e4); ("new", 1.0, 10., 10.) ] in
  match Obs.Bench_diff.diff ~baseline ~current () with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
    (match Obs.Bench_diff.regressions report with
    | [ v ] ->
      Alcotest.(check string) "deterministic count regressed" "root_calls"
        v.Obs.Bench_diff.metric
    | vs -> Alcotest.failf "expected one regression, got %d" (List.length vs));
    Alcotest.(check (list string)) "id skew: baseline side" [ "gone" ]
      report.Obs.Bench_diff.only_in_baseline;
    Alcotest.(check (list string)) "id skew: current side" [ "new" ]
      report.Obs.Bench_diff.only_in_current;
    check_true "skew alone is not a regression, but gate reports it"
      (not (Obs.Bench_diff.ok report)
       || Obs.Bench_diff.regressions report <> []);
    let t = Obs.Bench_diff.table report in
    check_true "table mentions the regression"
      (contains (Report.Table.to_string t) "REGRESSED");
    check_true "summary mentions skew"
      (contains (Obs.Bench_diff.summary report) "gone")

let test_bench_diff_errors () =
  (match Obs.Bench_diff.diff ~baseline:(Obs.Json.Obj []) ~current:(bench_record []) () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "record without figures must be rejected");
  match Obs.Bench_diff.load_file ~path:"/nonexistent/bench.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must be an Error"

(* ------------------------------------------------------------------ *)
(* histogram boundary behaviour (pins the interpolation fix) *)

let test_histogram_point_masses () =
  List.iter
    (fun v ->
      Obs.Metrics.reset ~prefix:"t.point." ();
      let h = Obs.Metrics.histogram "t.point.h" in
      for _ = 1 to 100 do
        Obs.Metrics.observe h v
      done;
      List.iter
        (fun p ->
          check_close
            (Printf.sprintf "point mass at %g: p%g exact" v p)
            v
            (Obs.Metrics.percentile h p))
        [ 1.; 50.; 99.; 100. ])
    [ 1.0; 1e-3; 1e3 ]

let test_histogram_extreme_values () =
  Obs.Metrics.reset ~prefix:"t.extreme." ();
  let h = Obs.Metrics.histogram "t.extreme.h" in
  (* below, at and beyond the bucketed range: must clamp, never crash *)
  List.iter (Obs.Metrics.observe h) [ 1e-12; 1e-9; 1.0; 1e9; 1e12 ];
  List.iter
    (fun p ->
      let v = Obs.Metrics.percentile h p in
      check_true (Printf.sprintf "p%g finite" p) (Float.is_finite v);
      check_true "within observed range" (v >= 1e-12 && v <= 1e12))
    [ 0.; 10.; 50.; 90.; 100. ];
  let s = Obs.Metrics.summarize h in
  Alcotest.(check int) "all observations counted" 5 s.Obs.Metrics.count;
  check_true "cumulative bucket edges cover the count"
    (match List.rev s.Obs.Metrics.buckets_le with
    | (_, last) :: _ -> last = s.Obs.Metrics.count
    | [] -> false)

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [ quick "monotone non-decreasing" test_clock_monotone ] );
      ( "metrics",
        [
          quick "counter label merging" test_counter_label_merging;
          quick "kind conflict rejected" test_kind_conflict;
          quick "reset keeps handles live" test_reset_in_place;
          quick "percentiles: uniform 1..1000" test_histogram_percentiles_uniform;
          quick "percentiles: bimodal latency" test_histogram_percentiles_bimodal;
          quick "underflow bucket" test_histogram_underflow;
          quick "percentiles: point masses exact" test_histogram_point_masses;
          quick "percentiles: extreme decades clamp" test_histogram_extreme_values;
        ] );
      ( "log",
        [
          quick "level and module filtering" test_log_levels;
          quick "level names parse" test_log_level_names;
          quick "rate-limited repeats coalesce and drain" test_log_rate_limit;
          quick "jsonl rendering round-trips" test_log_jsonl_round_trip;
        ] );
      ( "series",
        [
          quick "ring wraparound" test_series_wraparound;
          quick "tick derives rates and quantile tracks" test_series_tick_rates;
          quick "windowed aggregation" test_series_window;
          quick "concurrent ticks stay bounded" test_series_concurrent_ticks;
        ] );
      ( "prom",
        [
          quick "exposition format" test_prom_exposition;
          quick "name sanitization and escaping" test_prom_name_sanitization;
        ] );
      ( "bench_diff",
        [
          quick "identical records pass" test_bench_diff_identical;
          quick "2x slowdown detected" test_bench_diff_detects_slowdown;
          quick "count regressions and id skew" test_bench_diff_counts_and_skew;
          quick "malformed inputs are errors" test_bench_diff_errors;
        ] );
      ( "trace",
        [
          quick "nesting and ordering" test_span_nesting;
          quick "disabled tracing buffers nothing" test_span_disabled_is_free;
          quick "span closed on exception" test_span_closed_on_exception;
          quick "attributes" test_span_attrs;
        ] );
      ( "json",
        [
          quick "value round trip" test_json_round_trip;
          quick "trace export round trip" test_trace_json_round_trip;
          quick "metrics export round trip" test_metrics_json_round_trip;
        ] );
      ( "integration",
        [
          quick "nash solve traces every layer" test_nash_trace_all_layers;
          quick "per-run telemetry scoping" test_per_run_stats_scoping;
        ] );
    ]
