(* Instrumentation suite: span nesting and exception safety, histogram
   percentile math against known distributions, counter label merging,
   trace/metrics JSON round-trips through the parser, and an
   integration check that a Nash solve on the paper's fig7 game leaves
   spans for every layer of the equilibrium pipeline. *)

open Test_helpers

let with_tracing f =
  Obs.Trace.clear ();
  Obs.Trace.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Trace.set_enabled false; Obs.Trace.clear ()) f

let span_named name =
  List.filter (fun s -> s.Obs.Trace.name = name) (Obs.Trace.spans ())

(* ------------------------------------------------------------------ *)
(* clock *)

let test_clock_monotone () =
  let samples = Array.init 1000 (fun _ -> Obs.Clock.now ()) in
  Array.iteri
    (fun i t -> if i > 0 then check_true "clock never decreases" (t >= samples.(i - 1)))
    samples;
  check_true "elapsed non-negative" (Obs.Clock.elapsed ~since:(Obs.Clock.now ()) >= 0.);
  check_close ~tol:1e-9 "us conversion" 2.5e6 (Obs.Clock.us_of_s 2.5)

(* ------------------------------------------------------------------ *)
(* metrics *)

let test_counter_label_merging () =
  Obs.Metrics.reset ~prefix:"t.merge." ();
  let a = Obs.Metrics.counter ~labels:[ ("x", "1"); ("y", "2") ] "t.merge.c" in
  (* same label set, opposite order: must be the same series *)
  let b = Obs.Metrics.counter ~labels:[ ("y", "2"); ("x", "1") ] "t.merge.c" in
  let other = Obs.Metrics.counter ~labels:[ ("x", "1"); ("y", "3") ] "t.merge.c" in
  Obs.Metrics.incr a;
  Obs.Metrics.incr ~by:2. b;
  Obs.Metrics.incr ~by:10. other;
  check_close "merged handle sees both increments" 3. (Obs.Metrics.counter_value a);
  check_close "distinct labels stay distinct" 10. (Obs.Metrics.counter_value other);
  check_close "sum over series" 13. (Obs.Metrics.sum_counters "t.merge.c");
  check_close "filtered sum" 3.
    (Obs.Metrics.sum_counters
       ~where:(fun labels -> Obs.Metrics.label labels "y" = Some "2")
       "t.merge.c")

let test_kind_conflict () =
  let _ = Obs.Metrics.counter "t.kind.c" in
  check_raises_invalid "re-registering as gauge" (fun () -> Obs.Metrics.gauge "t.kind.c")

let test_reset_in_place () =
  let c = Obs.Metrics.counter "t.reset.c" in
  Obs.Metrics.incr ~by:5. c;
  Obs.Metrics.reset ~prefix:"t.reset." ();
  check_close "zeroed" 0. (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  check_close "handle still live after reset" 1. (Obs.Metrics.counter_value c)

let test_histogram_percentiles_uniform () =
  Obs.Metrics.reset ~prefix:"t.hist." ();
  let h = Obs.Metrics.histogram "t.hist.uniform" in
  (* 1..1000 uniformly: p50 = 500, p90 = 900, p99 = 990; log-bucket
     resolution is 24/decade so answers must land within ~10% *)
  for i = 1 to 1000 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  let rel_close msg expected actual =
    if Float.abs (actual -. expected) > 0.10 *. expected then
      Alcotest.failf "%s: expected ~%g, got %g" msg expected actual
  in
  rel_close "p50 of 1..1000" 500. (Obs.Metrics.percentile h 50.);
  rel_close "p90 of 1..1000" 900. (Obs.Metrics.percentile h 90.);
  rel_close "p99 of 1..1000" 990. (Obs.Metrics.percentile h 99.);
  check_close "p0 clamps to min" 1. (Obs.Metrics.percentile h 0.);
  check_close "p100 clamps to max" 1000. (Obs.Metrics.percentile h 100.);
  let s = Obs.Metrics.summarize h in
  Alcotest.(check int) "count" 1000 s.Obs.Metrics.count;
  check_close "sum" 500500. s.Obs.Metrics.sum;
  check_close "min" 1. s.Obs.Metrics.min;
  check_close "max" 1000. s.Obs.Metrics.max

let test_histogram_percentiles_bimodal () =
  let h = Obs.Metrics.histogram "t.hist.bimodal" in
  (* 90 samples at ~1ms, 10 at ~1s: p50 must sit in the fast mode,
     p99 in the slow one — the property that localizes a slow tail *)
  for _ = 1 to 90 do
    Obs.Metrics.observe h 1e-3
  done;
  for _ = 1 to 10 do
    Obs.Metrics.observe h 1.0
  done;
  check_in_range "p50 in fast mode" ~lo:0.8e-3 ~hi:1.2e-3 (Obs.Metrics.percentile h 50.);
  check_in_range "p99 in slow mode" ~lo:0.8 ~hi:1.2 (Obs.Metrics.percentile h 99.);
  let empty = Obs.Metrics.histogram "t.hist.empty" in
  check_true "empty histogram percentile is nan"
    (Float.is_nan (Obs.Metrics.percentile empty 50.))

let test_histogram_underflow () =
  let h = Obs.Metrics.histogram "t.hist.underflow" in
  Obs.Metrics.observe h 0.;
  Obs.Metrics.observe h 5.;
  let s = Obs.Metrics.summarize h in
  Alcotest.(check int) "zero-valued samples counted" 2 s.Obs.Metrics.count;
  check_close "p25 resolves to min" 0. (Obs.Metrics.percentile h 25.)

(* ------------------------------------------------------------------ *)
(* tracing *)

let test_span_nesting () =
  with_tracing @@ fun () ->
  let r =
    Obs.Trace.with_span "outer" (fun () ->
        Obs.Trace.with_span "inner.a" (fun () -> ()) ;
        Obs.Trace.with_span "inner.b" (fun () -> 17))
  in
  Alcotest.(check int) "thunk result propagates" 17 r;
  let spans = Obs.Trace.spans () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let outer = List.hd (span_named "outer") in
  let a = List.hd (span_named "inner.a") in
  let b = List.hd (span_named "inner.b") in
  Alcotest.(check (option int)) "outer is a root" None outer.Obs.Trace.parent;
  Alcotest.(check (option int)) "a nests under outer" (Some outer.Obs.Trace.id) a.Obs.Trace.parent;
  Alcotest.(check (option int)) "b nests under outer" (Some outer.Obs.Trace.id) b.Obs.Trace.parent;
  (* ordering: sorted by start, parents first; ids reflect open order *)
  check_true "outer starts first" (outer.Obs.Trace.start <= a.Obs.Trace.start);
  check_true "a starts before b" (a.Obs.Trace.id < b.Obs.Trace.id);
  check_true "a closes before b opens" (a.Obs.Trace.stop <= b.Obs.Trace.start);
  check_true "outer closes last" (outer.Obs.Trace.stop >= b.Obs.Trace.stop);
  Alcotest.(check (list string)) "sorted order is outer, a, b"
    [ "outer"; "inner.a"; "inner.b" ]
    (List.map (fun s -> s.Obs.Trace.name) spans)

let test_span_disabled_is_free () =
  Obs.Trace.clear ();
  Obs.Trace.set_enabled false;
  let r = Obs.Trace.with_span "ghost" (fun () -> 3) in
  Alcotest.(check int) "thunk still runs" 3 r;
  Alcotest.(check int) "no spans buffered" 0 (List.length (Obs.Trace.spans ()))

let test_span_closed_on_exception () =
  with_tracing @@ fun () ->
  (try Obs.Trace.with_span "boom" (fun () -> failwith "bang") with Failure _ -> ());
  match span_named "boom" with
  | [ s ] ->
    check_true "stop recorded despite the raise" (not (Float.is_nan s.Obs.Trace.stop));
    Alcotest.(check (option string)) "stack unwound" None (Obs.Trace.current ())
  | other -> Alcotest.failf "expected 1 completed span, got %d" (List.length other)

let test_span_attrs () =
  with_tracing @@ fun () ->
  Obs.Trace.with_span ~attrs:[ ("k", "v") ] "tagged" (fun () ->
      Obs.Trace.add_attr "extra" "1");
  let s = List.hd (span_named "tagged") in
  Alcotest.(check (option string)) "static attr" (Some "v")
    (List.assoc_opt "k" s.Obs.Trace.attrs);
  Alcotest.(check (option string)) "dynamic attr" (Some "1")
    (List.assoc_opt "extra" s.Obs.Trace.attrs)

(* ------------------------------------------------------------------ *)
(* JSON round trips *)

let test_json_round_trip () =
  let v =
    Obs.Json.(
      Obj
        [
          ("s", Str "quote \" backslash \\ newline \n unicode \xc3\xa9");
          ("n", Num 1.5);
          ("i", Num 42.);
          ("neg", Num (-0.125));
          ("b", Bool true);
          ("null", Null);
          ("arr", Arr [ Num 1.; Str "two"; Obj [ ("deep", Bool false) ] ]);
          ("empty_arr", Arr []);
          ("empty_obj", Obj []);
        ])
  in
  let reparsed = Obs.Json.of_string (Obs.Json.to_string v) in
  check_true "compact round trip is identity" (reparsed = v);
  let reparsed_pretty = Obs.Json.of_string (Obs.Json.to_string ~pretty:true v) in
  check_true "pretty round trip is identity" (reparsed_pretty = v);
  (match Obs.Json.of_string {| {"a": [1, 2.5e2, -3], "bA": "é😀"} |} with
  | Obs.Json.Obj [ ("a", Obs.Json.Arr [ _; Obs.Json.Num x; _ ]); (key, _) ] ->
    check_close "exponent parsed" 250. x;
    Alcotest.(check string) "escaped key decoded" "b\x41" key
  | _ -> Alcotest.fail "unexpected parse shape");
  check_raises_invalid "trailing garbage rejected" (fun () ->
      try Obs.Json.of_string "{} junk"
      with Obs.Json.Parse_error _ -> invalid_arg "ok")

let test_trace_json_round_trip () =
  with_tracing (fun () ->
      Obs.Trace.with_span "root" (fun () ->
          Obs.Trace.with_span ~attrs:[ ("p", "0.8") ] "child" (fun () -> ()));
      let doc = Obs.Export.trace_json () in
      let reparsed = Obs.Json.of_string (Obs.Json.to_string doc) in
      match Option.bind (Obs.Json.member "traceEvents" reparsed) Obs.Json.to_list with
      | Some events ->
        Alcotest.(check int) "one event per span" 2 (List.length events);
        List.iter
          (fun e ->
            check_true "ts present"
              (Option.is_some (Option.bind (Obs.Json.member "ts" e) Obs.Json.to_float));
            check_true "dur present"
              (Option.is_some (Option.bind (Obs.Json.member "dur" e) Obs.Json.to_float)))
          events
      | None -> Alcotest.fail "traceEvents missing after round trip")

let test_metrics_json_round_trip () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter ~labels:[ ("layer", "t") ] "t.json.c" in
  Obs.Metrics.incr ~by:7. c;
  let h = Obs.Metrics.histogram "t.json.h" in
  Obs.Metrics.observe h 0.5;
  let doc = Obs.Export.metrics_json ~prefix:"t.json." () in
  let reparsed = Obs.Json.of_string (Obs.Json.to_string doc) in
  match Option.bind (Obs.Json.member "series" reparsed) Obs.Json.to_list with
  | Some series ->
    Alcotest.(check int) "two series survive the round trip" 2 (List.length series)
  | None -> Alcotest.fail "series missing after round trip"

(* ------------------------------------------------------------------ *)
(* integration: the equilibrium pipeline leaves a full trace *)

let test_nash_trace_all_layers () =
  let game =
    Subsidization.Subsidy_game.make
      (Subsidization.Scenario.fig7_11_system ())
      ~price:0.8 ~cap:1.0
  in
  Numerics.Robust.reset_stats ();
  with_tracing @@ fun () ->
  let eq = Obs.Trace.with_span "experiment:test" (fun () -> Subsidization.Nash.solve game) in
  check_true "equilibrium converged" eq.Subsidization.Nash.converged;
  (* every layer of the pipeline must have produced spans... *)
  let count name = List.length (span_named name) in
  check_true "nash.solve span" (count "nash.solve" = 1);
  check_true "best_response.solve span" (count "best_response.solve" = 1);
  check_true "equilibrium solve spans" (count "system.equilibrium_phi" > 0);
  (* ...nested in pipeline order *)
  let by_id =
    List.fold_left
      (fun acc s -> (s.Obs.Trace.id, s) :: acc)
      [] (Obs.Trace.spans ())
  in
  let rec ancestors (s : Obs.Trace.span) =
    match s.Obs.Trace.parent with
    | None -> []
    | Some p ->
      let parent = List.assoc p by_id in
      parent.Obs.Trace.name :: ancestors parent
  in
  let phi = List.hd (span_named "system.equilibrium_phi") in
  let chain = ancestors phi in
  check_true "equilibrium nests under best_response"
    (List.mem "best_response.solve" chain);
  check_true "equilibrium nests under nash.solve" (List.mem "nash.solve" chain);
  check_true "equilibrium nests under the experiment root"
    (List.mem "experiment:test" chain);
  (* and the registry must agree with the legacy facade *)
  let stats = Numerics.Robust.stats () in
  check_close "per-layer counters sum to the facade total"
    (float_of_int stats.Numerics.Robust.root_calls)
    (Obs.Metrics.sum_counters "solver.root.calls");
  check_true "utilization layer labelled"
    (Obs.Metrics.sum_counters
       ~where:(fun labels -> Obs.Metrics.label labels "layer" = Some "utilization")
       "solver.root.calls"
    > 0.)

(* the satellite fix: Common.run scopes solver telemetry per run *)
let test_per_run_stats_scoping () =
  let fig4 = Experiments.Registry.find_exn "fig4" in
  let _ = Experiments.Common.run fig4 in
  let first = (Numerics.Robust.stats ()).Numerics.Robust.root_calls in
  check_true "fig4 does root solves" (first > 0);
  let _ = Experiments.Common.run fig4 in
  let second = (Numerics.Robust.stats ()).Numerics.Robust.root_calls in
  Alcotest.(check int) "second run reports its own count, not the running total"
    first second;
  (* opt-out keeps the old cumulative behaviour *)
  let _ = Experiments.Common.run ~isolate_stats:false fig4 in
  let third = (Numerics.Robust.stats ()).Numerics.Robust.root_calls in
  Alcotest.(check int) "isolate_stats:false accumulates" (2 * first) third

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [ quick "monotone non-decreasing" test_clock_monotone ] );
      ( "metrics",
        [
          quick "counter label merging" test_counter_label_merging;
          quick "kind conflict rejected" test_kind_conflict;
          quick "reset keeps handles live" test_reset_in_place;
          quick "percentiles: uniform 1..1000" test_histogram_percentiles_uniform;
          quick "percentiles: bimodal latency" test_histogram_percentiles_bimodal;
          quick "underflow bucket" test_histogram_underflow;
        ] );
      ( "trace",
        [
          quick "nesting and ordering" test_span_nesting;
          quick "disabled tracing buffers nothing" test_span_disabled_is_free;
          quick "span closed on exception" test_span_closed_on_exception;
          quick "attributes" test_span_attrs;
        ] );
      ( "json",
        [
          quick "value round trip" test_json_round_trip;
          quick "trace export round trip" test_trace_json_round_trip;
          quick "metrics export round trip" test_metrics_json_round_trip;
        ] );
      ( "integration",
        [
          quick "nash solve traces every layer" test_nash_trace_all_layers;
          quick "per-run telemetry scoping" test_per_run_stats_scoping;
        ] );
    ]
