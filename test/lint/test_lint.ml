(* Static-analysis suite: every sublint rule fires on a minimal inline
   fixture and stays silent on its clean counterpart; rule scoping and
   allowlisting are honoured; the baseline ratchet round-trips through
   its file format and detects both fresh findings and stale
   allowances; the two-phase analyzer's semantic rules (EXN-ESCAPE,
   SYNC-DISCIPLINE) resolve calls across modules; suppressions are
   consumed or reported unused; the content-digest cache serves warm
   runs byte-identically; and the lint.v1 and SARIF records parse back
   with their documented shapes. *)

open Test_helpers

let lint ~path src = Lint.Driver.lint_string ~path src

let count rule findings =
  List.length (List.filter (fun f -> String.equal f.Lint.Finding.rule rule) findings)

let check_fires msg rule ~path src =
  Alcotest.(check bool) msg true (count rule (lint ~path src) > 0)

let check_silent msg rule ~path src =
  Alcotest.(check int) msg 0 (count rule (lint ~path src))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  m = 0 || go 0

let check_contains msg ~sub s =
  if not (contains ~sub s) then Alcotest.failf "%s: %S not in %S" msg sub s

(* full two-phase pipeline over in-memory sources *)
let analyze pairs = (Lint.Driver.analyze_sources pairs).Lint.Driver.findings

let only rule findings =
  List.filter (fun f -> String.equal f.Lint.Finding.rule rule) findings

(* ------------------------------------------------------------------ *)
(* NO-BARE-RAISE *)

let solver_path = "lib/numerics/fixture.ml"

let test_bare_raise_positive () =
  check_fires "failwith fires" "NO-BARE-RAISE" ~path:solver_path
    {|let f x = if x < 0 then failwith "neg" else x|};
  check_fires "invalid_arg fires" "NO-BARE-RAISE" ~path:solver_path
    {|let f x = if x < 0 then invalid_arg "neg" else x|};
  check_fires "assert false fires" "NO-BARE-RAISE" ~path:solver_path
    {|let f = function Some x -> x | None -> assert false|};
  check_fires "raise outside the taxonomy fires" "NO-BARE-RAISE" ~path:solver_path
    {|let f () = raise Exit|}

let test_bare_raise_negative () =
  check_silent "Result-typed failure is clean" "NO-BARE-RAISE" ~path:solver_path
    {|let f x = if x < 0 then Error `Negative else Ok x|};
  check_silent "typed taxonomy raise is allowed" "NO-BARE-RAISE" ~path:solver_path
    {|let f () = raise (No_convergence "10 iterations")|};
  check_silent "re-raising a caught exception is allowed" "NO-BARE-RAISE"
    ~path:solver_path
    {|let f g = try g () with Division_by_zero as e -> print_count (); raise e|}

let test_bare_raise_scope () =
  (* the rule covers solver layers only, and exempts the sanctioned
     precondition module *)
  check_silent "lib/econ is out of scope" "NO-BARE-RAISE" ~path:"lib/econ/fixture.ml"
    {|let f () = failwith "boom"|};
  check_silent "bin/ is out of scope" "NO-BARE-RAISE" ~path:"bin/fixture.ml"
    {|let f () = failwith "boom"|};
  check_silent "precondition.ml is the sanctioned site" "NO-BARE-RAISE"
    ~path:"lib/numerics/precondition.ml"
    {|let fail ~fn detail = invalid_arg (fn ^ ": " ^ detail)|}

(* ------------------------------------------------------------------ *)
(* NO-SWALLOW *)

let test_swallow_positive () =
  check_fires "catch-all try fires" "NO-SWALLOW" ~path:"lib/core/fixture.ml"
    {|let f g = try g 0. >= 0. with _ -> false|};
  check_fires "catch-all match-exception fires" "NO-SWALLOW"
    ~path:"lib/core/fixture.ml"
    {|let f g = match g () with x -> x | exception _ -> 0.|}

let test_swallow_negative () =
  check_silent "typed handler is clean" "NO-SWALLOW" ~path:"lib/core/fixture.ml"
    {|let f g = try Some (g ()) with Not_found -> None|};
  check_silent "typed match-exception handler is clean" "NO-SWALLOW"
    ~path:"lib/core/fixture.ml"
    {|let f g = match g () with x -> x | exception Invalid_argument _ -> 0.|}

(* ------------------------------------------------------------------ *)
(* NO-RAW-CLOCK *)

let test_raw_clock_positive () =
  check_fires "Unix.gettimeofday fires" "NO-RAW-CLOCK" ~path:"lib/core/fixture.ml"
    {|let now () = Unix.gettimeofday ()|};
  check_fires "Sys.time fires" "NO-RAW-CLOCK" ~path:"bench/fixture.ml"
    {|let cpu () = Sys.time ()|}

let test_raw_clock_negative () =
  check_silent "Obs.Clock is the sanctioned source" "NO-RAW-CLOCK"
    ~path:"lib/core/fixture.ml" {|let now () = Obs.Clock.now ()|};
  check_silent "clock.ml itself is exempt" "NO-RAW-CLOCK" ~path:"lib/obs/clock.ml"
    {|let now () = Unix.gettimeofday ()|}

(* ------------------------------------------------------------------ *)
(* NO-LIB-PRINT *)

let test_lib_print_positive () =
  check_fires "Printf.printf fires" "NO-LIB-PRINT" ~path:"lib/game/fixture.ml"
    {|let f () = Printf.printf "sweep %d\n" 3|};
  check_fires "print_endline fires" "NO-LIB-PRINT" ~path:"lib/game/fixture.ml"
    {|let f () = print_endline "done"|};
  check_fires "Format.printf fires" "NO-LIB-PRINT" ~path:"lib/experiments/fixture.ml"
    {|let f pp c = Format.printf "%a" pp c|}

let test_lib_print_negative () =
  check_silent "fprintf to a caller channel is clean" "NO-LIB-PRINT"
    ~path:"lib/game/fixture.ml"
    {|let f out = Printf.fprintf out "sweep %d\n" 3|};
  check_silent "sprintf is clean" "NO-LIB-PRINT" ~path:"lib/game/fixture.ml"
    {|let f n = Printf.sprintf "%d" n|};
  check_silent "bin/ may own stdout" "NO-LIB-PRINT" ~path:"bin/fixture.ml"
    {|let f () = print_endline "done"|};
  check_silent "export.ml is the sanctioned stdout sink" "NO-LIB-PRINT"
    ~path:"lib/obs/export.ml" {|let f line = print_endline line|}

(* ------------------------------------------------------------------ *)
(* NO-ADHOC-LOG *)

let test_adhoc_log_positive () =
  check_fires "prerr_endline fires" "NO-ADHOC-LOG" ~path:"lib/service/fixture.ml"
    {|let f () = prerr_endline "oops"|};
  check_fires "Printf.eprintf fires" "NO-ADHOC-LOG" ~path:"lib/service/fixture.ml"
    {|let f n = Printf.eprintf "bad %d\n" n|};
  check_fires "Format.eprintf fires" "NO-ADHOC-LOG" ~path:"lib/runner/fixture.ml"
    {|let f pp c = Format.eprintf "%a" pp c|};
  check_fires "writing to stderr directly fires" "NO-ADHOC-LOG"
    ~path:"lib/service/fixture.ml"
    {|let f line = output_string stderr line|};
  check_fires "qualified prerr fires" "NO-ADHOC-LOG" ~path:"lib/game/fixture.ml"
    {|let f () = Stdlib.prerr_endline "oops"|}

let test_adhoc_log_negative () =
  check_silent "Obs.Log calls are the sanctioned path" "NO-ADHOC-LOG"
    ~path:"lib/service/fixture.ml"
    {|let f msg = Obs.Log.warn ~m:"server" msg|};
  check_silent "fprintf to a caller channel is clean" "NO-ADHOC-LOG"
    ~path:"lib/service/fixture.ml"
    {|let f out = Printf.fprintf out "detail %d\n" 3|};
  check_silent "lib/obs implements the logger" "NO-ADHOC-LOG"
    ~path:"lib/obs/log.ml" {|let f e = output_string stderr e|};
  check_silent "bin/ may own stderr" "NO-ADHOC-LOG" ~path:"bin/fixture.ml"
    {|let f () = prerr_endline "usage: ..."|};
  check_silent "test code may own stderr" "NO-ADHOC-LOG"
    ~path:"test/service/fixture.ml" {|let f () = Printf.eprintf "dbg\n"|}

(* ------------------------------------------------------------------ *)
(* NO-FLOAT-EQ *)

let test_float_eq_positive () =
  let findings = lint ~path:"lib/numerics/fixture.ml" {|let f x = x = 0.|} in
  Alcotest.(check int) "float-literal = fires" 1 (count "NO-FLOAT-EQ" findings);
  (match findings with
  | [ f ] ->
    Alcotest.(check string) "severity is warning" "warning"
      (Lint.Finding.severity_name f.Lint.Finding.severity)
  | _ -> Alcotest.fail "expected exactly one finding");
  check_fires "literal on the left fires" "NO-FLOAT-EQ" ~path:"lib/numerics/fixture.ml"
    {|let f x = 1.0 <> x|};
  check_fires "physical equality fires" "NO-FLOAT-EQ" ~path:"lib/numerics/fixture.ml"
    {|let f x = x == 0.|}

let test_float_eq_negative () =
  check_silent "no literal involved is clean" "NO-FLOAT-EQ"
    ~path:"lib/numerics/fixture.ml" {|let f x y = x = y|};
  check_silent "integer literals are clean" "NO-FLOAT-EQ"
    ~path:"lib/numerics/fixture.ml" {|let f n = n = 0|};
  check_silent "tolerance comparison is clean" "NO-FLOAT-EQ"
    ~path:"lib/numerics/fixture.ml" {|let f x = Float.abs x <= 1e-12|}

(* ------------------------------------------------------------------ *)
(* NO-OBJ-MAGIC *)

let test_obj_magic_positive () =
  check_fires "Obj.magic fires" "NO-OBJ-MAGIC" ~path:"lib/core/fixture.ml"
    {|let f x = (Obj.magic x : int)|}

let test_obj_magic_negative () =
  check_silent "ordinary coercion is clean" "NO-OBJ-MAGIC" ~path:"lib/core/fixture.ml"
    {|let f x = (x :> int)|}

(* ------------------------------------------------------------------ *)
(* NO-UNSYNC-GLOBAL *)

let pool_path = "lib/parallel/fixture.ml"

let test_unsync_global_positive () =
  check_fires "top-level ref fires" "NO-UNSYNC-GLOBAL" ~path:pool_path
    {|let counter = ref 0|};
  check_fires "top-level Hashtbl fires" "NO-UNSYNC-GLOBAL" ~path:pool_path
    {|let cache : (int, float) Hashtbl.t = Hashtbl.create 16|};
  check_fires "closure-captured ref fires" "NO-UNSYNC-GLOBAL" ~path:pool_path
    {|let next = let n = ref 0 in fun () -> incr n; !n|};
  check_fires "Array.make scratch fires" "NO-UNSYNC-GLOBAL" ~path:pool_path
    {|let scratch = Array.make 64 0.|};
  check_fires "sync attribute without a note does not exempt" "NO-UNSYNC-GLOBAL"
    ~path:pool_path {|let counter = ref 0 [@@sync]|};
  check_fires "nested module globals fire" "NO-UNSYNC-GLOBAL" ~path:pool_path
    {|module Inner = struct let seen = Hashtbl.create 4 end|}

let test_unsync_global_negative () =
  check_silent "a documented sync note exempts" "NO-UNSYNC-GLOBAL" ~path:pool_path
    {|let counter = ref 0 [@@sync "guarded by [lock]"]|};
  check_silent "Atomic is inherently safe" "NO-UNSYNC-GLOBAL" ~path:pool_path
    {|let hits = Atomic.make 0|};
  check_silent "Mutex/Condition are inherently safe" "NO-UNSYNC-GLOBAL"
    ~path:pool_path {|let lock = Mutex.create ()
let work = Condition.create ()|};
  check_silent "Domain.DLS state is domain-local" "NO-UNSYNC-GLOBAL" ~path:pool_path
    {|let stack_key = Domain.DLS.new_key (fun () -> ref [])|};
  check_silent "state created inside a function is local" "NO-UNSYNC-GLOBAL"
    ~path:pool_path {|let f xs = let seen = Hashtbl.create 8 in List.iter (Hashtbl.add seen ()) xs|};
  check_silent "constant array literals are the table idiom" "NO-UNSYNC-GLOBAL"
    ~path:pool_path {|let prices = [| 0.2; 0.5; 0.8 |]|};
  check_silent "test code is out of scope" "NO-UNSYNC-GLOBAL"
    ~path:"bin/fixture.ml" {|let counter = ref 0|}

(* ------------------------------------------------------------------ *)
(* MLI-REQUIRED *)

let test_mli_required_positive () =
  let findings =
    Lint.Rules.mli_required ~files:[ "lib/foo/a.ml"; "lib/foo/b.ml"; "lib/foo/b.mli" ]
  in
  Alcotest.(check int) "one missing interface" 1 (count "MLI-REQUIRED" findings);
  match findings with
  | [ f ] -> Alcotest.(check string) "names the bare module" "lib/foo/a.ml" f.Lint.Finding.file
  | _ -> Alcotest.fail "expected exactly one finding"

let test_mli_required_negative () =
  Alcotest.(check int) "paired module is clean" 0
    (List.length
       (Lint.Rules.mli_required ~files:[ "lib/foo/a.ml"; "lib/foo/a.mli" ]));
  Alcotest.(check int) "executables are out of scope" 0
    (List.length (Lint.Rules.mli_required ~files:[ "bin/main.ml"; "bench/main.ml" ]))

(* ------------------------------------------------------------------ *)
(* parsing *)

let test_parse_failure () =
  match lint ~path:"lib/core/fixture.ml" "let f = (" with
  | _ -> Alcotest.fail "expected Parse_failed"
  | exception Lint.Driver.Parse_failed msg ->
    check_true "message names the file" (String.length msg > 0)

let test_parse_error_collected () =
  (* the project analyzer never aborts on a bad file: it reports *)
  let r =
    Lint.Driver.analyze_sources
      [ ("lib/core/broken.ml", "let f = ("); ("lib/core/good.ml", "let g x = x") ]
  in
  Alcotest.(check int) "one PARSE-ERROR finding" 1
    (count "PARSE-ERROR" r.Lint.Driver.findings);
  Alcotest.(check int) "one parse error recorded" 1
    (List.length r.Lint.Driver.parse_errors);
  (match only "PARSE-ERROR" r.Lint.Driver.findings with
  | [ f ] ->
    Alcotest.(check string) "finding names the bad file" "lib/core/broken.ml"
      f.Lint.Finding.file;
    check_contains "message explains the blind spot" ~sub:"does not parse"
      f.Lint.Finding.message
  | _ -> Alcotest.fail "expected exactly one PARSE-ERROR")

(* ------------------------------------------------------------------ *)
(* EXN-ESCAPE: interprocedural exception-escape through the call graph *)

let fx_mli = ("lib/core/fx.mli", "val solve : int -> (int, string) result")

let test_exn_escape_direct () =
  let fs =
    analyze
      [ fx_mli; ("lib/core/fx.ml", {|let solve x = if x < 0 then raise Exit else Ok x|}) ]
  in
  Alcotest.(check int) "direct raise flagged" 1 (count "EXN-ESCAPE" fs);
  match only "EXN-ESCAPE" fs with
  | [ f ] ->
    Alcotest.(check string) "severity is error" "error"
      (Lint.Finding.severity_name f.Lint.Finding.severity);
    check_contains "message carries the call path" ~sub:"call path" f.Lint.Finding.message;
    check_contains "message names the entry" ~sub:"Fx.solve" f.Lint.Finding.message
  | _ -> Alcotest.fail "expected exactly one finding"

let test_exn_escape_transitive () =
  (* via a same-file helper *)
  let fs =
    analyze
      [
        fx_mli;
        ( "lib/core/fx.ml",
          {|let boom x = if x < 0 then raise Exit else x
let solve x = Ok (boom x)|} );
      ]
  in
  Alcotest.(check int) "transitive raise flagged" 1 (count "EXN-ESCAPE" fs);
  (match only "EXN-ESCAPE" fs with
  | [ f ] ->
    check_contains "path walks through the helper" ~sub:"Fx.solve -> Fx.boom"
      f.Lint.Finding.message
  | _ -> Alcotest.fail "expected exactly one finding");
  (* via a sibling module of the same library *)
  let fs =
    analyze
      [
        fx_mli;
        ("lib/core/fx.ml", {|let solve x = Ok (Util.boom x)|});
        ("lib/core/util.ml", {|let boom x = if x < 0 then raise Exit else x|});
      ]
  in
  Alcotest.(check int) "cross-module raise flagged" 1 (count "EXN-ESCAPE" fs);
  match only "EXN-ESCAPE" fs with
  | [ f ] ->
    Alcotest.(check string) "finding lands at the raise site" "lib/core/util.ml"
      f.Lint.Finding.file;
    check_contains "path crosses the module boundary" ~sub:"Fx.solve -> Util.boom"
      f.Lint.Finding.message
  | _ -> Alcotest.fail "expected exactly one finding"

let test_exn_escape_absorbed () =
  (* a match-exception boundary absorbs both the helper call and the
     raise behind it: the entry cannot leak *)
  let fs =
    analyze
      [
        fx_mli;
        ( "lib/core/fx.ml",
          {|let boom x = if x < 0 then raise Exit else x
let solve x = match boom x with v -> Ok v | exception Exit -> Error "neg"|}
        );
      ]
  in
  Alcotest.(check int) "absorbed raise is silent" 0 (count "EXN-ESCAPE" fs);
  (* and a try boundary likewise *)
  let fs =
    analyze
      [
        fx_mli;
        ( "lib/core/fx.ml",
          {|let boom x = if x < 0 then raise Exit else x
let solve x = try Ok (boom x) with Exit -> Error "neg"|} );
      ]
  in
  Alcotest.(check int) "try-absorbed raise is silent" 0 (count "EXN-ESCAPE" fs)

let test_exn_escape_exempt () =
  (* Invalid_argument is the precondition idiom, out of scope here *)
  let fs =
    analyze
      [
        fx_mli;
        ("lib/core/fx.ml", {|let solve x = if x < 0 then invalid_arg "neg" else Ok x|});
      ]
  in
  Alcotest.(check int) "invalid_arg is exempt" 0 (count "EXN-ESCAPE" fs)

let test_exn_escape_scope () =
  (* the rule covers lib/numerics, lib/core and lib/service only *)
  let fs =
    analyze
      [
        ("lib/econ/fx.mli", "val solve : int -> (int, string) result");
        ("lib/econ/fx.ml", {|let solve x = if x < 0 then raise Exit else Ok x|});
      ]
  in
  Alcotest.(check int) "lib/econ is out of scope" 0 (count "EXN-ESCAPE" fs)

(* ------------------------------------------------------------------ *)
(* SYNC-DISCIPLINE: lock-context checking of [@@sync] globals *)

let sync_path = "lib/parallel/st.ml"

let test_sync_discipline_flags_unlocked () =
  let fs =
    analyze
      [
        ( sync_path,
          {|let lock = Mutex.create ()
let wrong = Mutex.create ()
let counter = ref 0 [@@sync "guarded by [lock]"]
let good () = Mutex.protect lock (fun () -> incr counter)
let bad () = incr counter
let also_bad () = Mutex.protect wrong (fun () -> incr counter)
let read_unlocked () = !counter|}
        );
      ]
  in
  Alcotest.(check int) "exactly the two bad accesses flagged" 2
    (count "SYNC-DISCIPLINE" fs);
  let lines =
    List.map (fun f -> f.Lint.Finding.line) (only "SYNC-DISCIPLINE" fs)
  in
  Alcotest.(check (list int)) "findings land on bad and also_bad" [ 5; 6 ] lines;
  let wrong_mutex =
    List.find
      (fun f -> f.Lint.Finding.line = 6)
      (only "SYNC-DISCIPLINE" fs)
  in
  check_contains "wrong-mutex message names what is held"
    ~sub:"locks held here: wrong" wrong_mutex.Lint.Finding.message

let test_sync_discipline_wrapper () =
  (* a local eta-wrapper around Mutex.protect counts as holding it *)
  let fs =
    analyze
      [
        ( sync_path,
          {|let lock = Mutex.create ()
let guarded f = Mutex.protect lock f
let counter = ref 0 [@@sync "guarded by [lock]"]
let tick () = guarded (fun () -> incr counter)|}
        );
      ]
  in
  Alcotest.(check int) "wrapper-guarded access is clean" 0
    (count "SYNC-DISCIPLINE" fs)

let test_sync_discipline_missing_mutex () =
  let fs =
    analyze
      [ (sync_path, {|let counter = ref 0 [@@sync "guarded by [lock]"]|}) ]
  in
  Alcotest.(check int) "annotation without the mutex is itself a finding" 1
    (count "SYNC-DISCIPLINE" fs);
  match only "SYNC-DISCIPLINE" fs with
  | [ f ] ->
    check_contains "message names the missing binding" ~sub:"no top-level"
      f.Lint.Finding.message
  | _ -> Alcotest.fail "expected exactly one finding"

(* ------------------------------------------------------------------ *)
(* [@sublint.allow] suppressions *)

let test_suppression_used_syntactic () =
  let fs =
    analyze
      [
        ( "lib/core/m.ml",
          {|let f x = (Obj.magic x : int) [@@sublint.allow "NO-OBJ-MAGIC" "test fixture"]|}
        );
      ]
  in
  Alcotest.(check int) "suppressed finding is dropped" 0 (count "NO-OBJ-MAGIC" fs);
  Alcotest.(check int) "consumed suppression is not reported unused" 0
    (count "UNUSED-SUPPRESSION" fs)

let test_suppression_used_semantic () =
  let fs =
    analyze
      [
        fx_mli;
        ( "lib/core/fx.ml",
          {|let solve x =
  if x < 0 then (raise Exit [@sublint.allow "EXN-ESCAPE" "fixture: caller catches"])
  else Ok x|}
        );
      ]
  in
  Alcotest.(check int) "raise-site suppression drops the escape" 0
    (count "EXN-ESCAPE" fs);
  Alcotest.(check int) "the semantic analysis marks it used" 0
    (count "UNUSED-SUPPRESSION" fs)

let test_suppression_unused () =
  let fs =
    analyze
      [
        ( "lib/core/m.ml",
          {|[@@@sublint.allow "NO-OBJ-MAGIC" "speculative"]
let id x = x|} );
      ]
  in
  Alcotest.(check int) "unused suppression is reported" 1
    (count "UNUSED-SUPPRESSION" fs);
  match only "UNUSED-SUPPRESSION" fs with
  | [ f ] ->
    Alcotest.(check string) "unused suppression is a warning" "warning"
      (Lint.Finding.severity_name f.Lint.Finding.severity);
    check_contains "message says it never matched" ~sub:"never matched"
      f.Lint.Finding.message
  | _ -> Alcotest.fail "expected exactly one finding"

let test_suppression_unknown_rule () =
  let fs =
    analyze
      [
        ( "lib/core/m.ml",
          {|[@@@sublint.allow "NO-SUCH-RULE" "typo"]
let id x = x|} );
      ]
  in
  Alcotest.(check int) "unknown rule id is reported" 1
    (count "UNUSED-SUPPRESSION" fs);
  match only "UNUSED-SUPPRESSION" fs with
  | [ f ] ->
    check_contains "message flags the unknown rule" ~sub:"unknown rule"
      f.Lint.Finding.message
  | _ -> Alcotest.fail "expected exactly one finding"

let test_suppression_malformed () =
  let fs =
    analyze
      [
        ( "lib/core/m.ml",
          {|let f x = (Obj.magic x : int) [@@sublint.allow "NO-OBJ-MAGIC"]|} );
      ]
  in
  Alcotest.(check int) "a reason-less allow suppresses nothing" 1
    (count "NO-OBJ-MAGIC" fs);
  Alcotest.(check int) "and is itself diagnosed" 1 (count "UNUSED-SUPPRESSION" fs);
  match only "UNUSED-SUPPRESSION" fs with
  | [ f ] ->
    check_contains "message says malformed" ~sub:"malformed" f.Lint.Finding.message
  | _ -> Alcotest.fail "expected exactly one finding"

(* ------------------------------------------------------------------ *)
(* baseline ratchet *)

let two_findings () =
  lint ~path:solver_path {|let f () = failwith "a"
let g () = invalid_arg "b"|}

let test_baseline_round_trip () =
  let findings = two_findings () in
  let b = Lint.Baseline.of_findings findings in
  let reparsed = Lint.Baseline.of_string (Lint.Baseline.to_string b) in
  Alcotest.(check int) "total survives the round trip" (Lint.Baseline.total b)
    (Lint.Baseline.total reparsed);
  Alcotest.(check int) "per-key allowance survives" 2
    (Lint.Baseline.count reparsed ~rule:"NO-BARE-RAISE" ~file:solver_path);
  match Lint.Baseline.of_string "3 NO-BARE-RAISE\n" with
  | _ -> Alcotest.fail "expected Malformed"
  | exception Lint.Baseline.Malformed _ -> ()

let test_baseline_ratchet () =
  let findings = two_findings () in
  let b = Lint.Baseline.of_findings findings in
  (* same findings: clean *)
  check_true "allowance absorbs the findings"
    (Lint.Baseline.clean (Lint.Baseline.diff ~baseline:b findings));
  (* one extra finding in the same file: exactly one fresh *)
  let more =
    findings
    @ lint ~path:solver_path {|let h () = failwith "c"|}
  in
  let drift = Lint.Baseline.diff ~baseline:b more in
  Alcotest.(check int) "one fresh finding" 1
    (List.length drift.Lint.Baseline.fresh);
  check_true "drift is not clean" (not (Lint.Baseline.clean drift));
  (* a fixed violation leaves a stale allowance: deliberate regeneration *)
  let drift = Lint.Baseline.diff ~baseline:b (List.tl findings) in
  Alcotest.(check int) "stale allowance detected" 1
    (List.length drift.Lint.Baseline.stale);
  check_true "stale baseline is not clean" (not (Lint.Baseline.clean drift))

let test_baseline_prune () =
  let findings = two_findings () in
  let b = Lint.Baseline.of_findings findings in
  let pruned = Lint.Baseline.prune b [ List.hd findings ] in
  Alcotest.(check int) "allowance ratchets down to reality" 1
    (Lint.Baseline.count pruned ~rule:"NO-BARE-RAISE" ~file:solver_path);
  check_true "pruned baseline is clean against reality"
    (Lint.Baseline.clean (Lint.Baseline.diff ~baseline:pruned [ List.hd findings ]));
  Alcotest.(check int) "no findings drops the key entirely" 0
    (Lint.Baseline.total (Lint.Baseline.prune b []));
  let more =
    findings @ lint ~path:solver_path {|let h () = failwith "c"|}
  in
  Alcotest.(check int) "prune never raises an allowance" 2
    (Lint.Baseline.count (Lint.Baseline.prune b more) ~rule:"NO-BARE-RAISE"
       ~file:solver_path)

(* ------------------------------------------------------------------ *)
(* content-digest cache *)

let test_cache_roundtrip () =
  let path = "lib/core/c.ml" in
  let info = Lint.Driver.analyze_source ~path "let f x = x + 1" in
  let c = Lint.Cache.empty ~version:Lint.Driver.cache_version in
  check_true "empty cache misses"
    (Option.is_none (Lint.Cache.find c ~path ~digest:"d1"));
  Lint.Cache.add c ~path ~digest:"d1" info;
  (match Lint.Cache.find c ~path ~digest:"d1" with
  | Some i -> Alcotest.(check string) "hit returns the entry" path i.Lint.Index.path
  | None -> Alcotest.fail "expected a cache hit");
  check_true "an edited file (new digest) misses"
    (Option.is_none (Lint.Cache.find c ~path ~digest:"d2"));
  let file = "test_lint.cache" in
  (match Lint.Cache.save c file with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %s" e);
  let warm = Lint.Cache.load ~version:Lint.Driver.cache_version file in
  check_true "persisted entry survives a reload"
    (Option.is_some (Lint.Cache.find warm ~path ~digest:"d1"));
  let stale = Lint.Cache.load ~version:"some-other-version" file in
  check_true "a version bump invalidates wholesale"
    (Option.is_none (Lint.Cache.find stale ~path ~digest:"d1"));
  let missing = Lint.Cache.load ~version:Lint.Driver.cache_version "no_such.cache" in
  check_true "a missing file is just cold"
    (Option.is_none (Lint.Cache.find missing ~path ~digest:"d1"));
  let oc = open_out file in
  output_string oc "not a marshalled cache";
  close_out oc;
  let corrupt = Lint.Cache.load ~version:Lint.Driver.cache_version file in
  check_true "a corrupt file is just cold"
    (Option.is_none (Lint.Cache.find corrupt ~path ~digest:"d1"));
  Sys.remove file

(* ------------------------------------------------------------------ *)
(* end-to-end scan: warm cache and --jobs determinism (over a scratch
   tree in the test's working directory) *)

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let rec mkdir_p dir =
  if (not (String.equal dir ".")) && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let make_tree root =
  mkdir_p (Filename.concat root "lib/core");
  write_file
    (Filename.concat root "lib/core/fx.mli")
    "val solve : int -> (int, string) result\n";
  write_file
    (Filename.concat root "lib/core/fx.ml")
    "let solve x = if x < 0 then raise Exit else Ok x\n";
  write_file (Filename.concat root "lib/core/util.ml") "let twice x = x * 2\n"

let report_string r =
  let drift =
    Lint.Baseline.diff ~baseline:Lint.Baseline.empty r.Lint.Driver.findings
  in
  Obs.Json.to_string (Lint.Driver.json_report ~root:"." r ~drift)

let test_scan_warm_cache () =
  let root = "scan_tree_cache" in
  rm_rf root;
  make_tree root;
  let c = Lint.Cache.empty ~version:Lint.Driver.cache_version in
  let r1 = Lint.Driver.scan ~cache:c ~root ~dirs:[ "lib" ] () in
  Alcotest.(check int) "three files scanned" 3 r1.Lint.Driver.files_scanned;
  Alcotest.(check int) "cold run parses everything" 3 r1.Lint.Driver.reparsed;
  Alcotest.(check int) "semantic rule runs from disk too" 1
    (count "EXN-ESCAPE" r1.Lint.Driver.findings);
  let r2 = Lint.Driver.scan ~cache:c ~root ~dirs:[ "lib" ] () in
  Alcotest.(check int) "warm run re-parses nothing" 0 r2.Lint.Driver.reparsed;
  Alcotest.(check string) "warm report is byte-identical to cold"
    (report_string r1) (report_string r2);
  write_file (Filename.concat root "lib/core/util.ml") "let twice x = x + x\n";
  let r3 = Lint.Driver.scan ~cache:c ~root ~dirs:[ "lib" ] () in
  Alcotest.(check int) "an edit re-parses exactly that file" 1
    r3.Lint.Driver.reparsed;
  rm_rf root

let test_scan_jobs_deterministic () =
  let root = "scan_tree_jobs" in
  rm_rf root;
  make_tree root;
  let at jobs =
    Parallel.Runtime.set_jobs jobs;
    report_string (Lint.Driver.scan ~root ~dirs:[ "lib" ] ())
  in
  let r1 = at 1 in
  let r4 = at 4 in
  check_true "scan found something" (String.length r1 > 2);
  Alcotest.(check string) "--jobs 1 and --jobs 4 agree byte-for-byte" r1 r4;
  rm_rf root

(* ------------------------------------------------------------------ *)
(* lint.v1 JSON *)

let jmem name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing %s" name

let test_json_shape () =
  let findings = two_findings () in
  let report =
    { Lint.Driver.findings; files_scanned = 1; reparsed = 1; parse_errors = [] }
  in
  let drift = Lint.Baseline.diff ~baseline:Lint.Baseline.empty findings in
  let json = Lint.Driver.json_report ~root:"." report ~drift in
  (* the record must survive the repo's own JSON parser *)
  let parsed = Obs.Json.of_string (Obs.Json.to_string json) in
  let member name = jmem name parsed in
  (match member "schema" with
  | Obs.Json.Str s -> Alcotest.(check string) "schema tag" "lint.v1" s
  | _ -> Alcotest.fail "schema is not a string");
  (match Obs.Json.to_list (member "rules") with
  | Some rules ->
    Alcotest.(check int) "all thirteen rules described" 13 (List.length rules);
    List.iter
      (fun r ->
        List.iter
          (fun field ->
            if Obs.Json.member field r = None then Alcotest.failf "rule lacks %s" field)
          [ "id"; "severity"; "doc"; "applies_to"; "exempt"; "baselinable" ])
      rules
  | None -> Alcotest.fail "rules is not an array");
  (match Obs.Json.to_list (member "findings") with
  | Some fs ->
    Alcotest.(check int) "every finding exported" (List.length findings)
      (List.length fs);
    List.iter
      (fun f ->
        List.iter
          (fun field ->
            if Obs.Json.member field f = None then
              Alcotest.failf "finding lacks %s" field)
          [ "rule"; "severity"; "file"; "line"; "col"; "message"; "fresh" ])
      fs
  | None -> Alcotest.fail "findings is not an array");
  match Obs.Json.member "total" (member "summary") with
  | Some total ->
    Alcotest.(check (option (float 0.)))
      "summary total" (Some 2.) (Obs.Json.to_float total)
  | None -> Alcotest.fail "summary lacks total"

(* ------------------------------------------------------------------ *)
(* SARIF 2.1.0 *)

let test_sarif_shape () =
  let findings = two_findings () in
  (* first finding fresh, second grandfathered *)
  let results = List.mapi (fun i f -> (f, i = 0)) findings in
  let doc =
    Obs.Json.of_string
      (Obs.Json.to_string (Lint.Sarif.report ~root:"/repo" ~results))
  in
  (match jmem "$schema" doc with
  | Obs.Json.Str s -> check_contains "schema uri pins 2.1.0" ~sub:"sarif-2.1.0" s
  | _ -> Alcotest.fail "$schema is not a string");
  (match jmem "version" doc with
  | Obs.Json.Str s -> Alcotest.(check string) "SARIF version" "2.1.0" s
  | _ -> Alcotest.fail "version is not a string");
  let run =
    match Obs.Json.to_list (jmem "runs" doc) with
    | Some [ r ] -> r
    | _ -> Alcotest.fail "expected exactly one run"
  in
  let driver = jmem "driver" (jmem "tool" run) in
  (match jmem "name" driver with
  | Obs.Json.Str s -> Alcotest.(check string) "tool name" "sublint" s
  | _ -> Alcotest.fail "driver name is not a string");
  (match Obs.Json.to_list (jmem "rules" driver) with
  | Some rules ->
    Alcotest.(check int) "the full taxonomy rides on the driver" 13
      (List.length rules)
  | None -> Alcotest.fail "rules is not an array");
  let results_j =
    match Obs.Json.to_list (jmem "results" run) with
    | Some l -> l
    | None -> Alcotest.fail "results is not an array"
  in
  Alcotest.(check int) "one result per finding" 2 (List.length results_j);
  let f0 = List.hd findings and r0 = List.hd results_j in
  (match jmem "ruleId" r0 with
  | Obs.Json.Str s ->
    Alcotest.(check string) "ruleId matches the finding" f0.Lint.Finding.rule s
  | _ -> Alcotest.fail "ruleId is not a string");
  check_true "result back-references the driver rules"
    (Obs.Json.member "ruleIndex" r0 <> None);
  (match jmem "baselineState" r0 with
  | Obs.Json.Str s -> Alcotest.(check string) "fresh result is new" "new" s
  | _ -> Alcotest.fail "baselineState is not a string");
  (match jmem "baselineState" (List.nth results_j 1) with
  | Obs.Json.Str s ->
    Alcotest.(check string) "grandfathered result is unchanged" "unchanged" s
  | _ -> Alcotest.fail "baselineState is not a string");
  let region =
    match Obs.Json.to_list (jmem "locations" r0) with
    | Some [ loc ] -> jmem "region" (jmem "physicalLocation" loc)
    | _ -> Alcotest.fail "expected exactly one location"
  in
  (match Obs.Json.to_float (jmem "startLine" region) with
  | Some l ->
    Alcotest.(check (float 0.)) "startLine matches"
      (float_of_int f0.Lint.Finding.line) l
  | None -> Alcotest.fail "startLine is not a number");
  match Obs.Json.to_float (jmem "startColumn" region) with
  | Some c ->
    Alcotest.(check (float 0.)) "startColumn is 1-based"
      (float_of_int (f0.Lint.Finding.col + 1))
      c
  | None -> Alcotest.fail "startColumn is not a number"

let () =
  Alcotest.run "lint"
    [
      ( "no-bare-raise",
        [
          quick "fires on failwith/invalid_arg/assert false" test_bare_raise_positive;
          quick "silent on typed errors" test_bare_raise_negative;
          quick "scoped to solver layers" test_bare_raise_scope;
        ] );
      ( "no-swallow",
        [
          quick "fires on catch-alls" test_swallow_positive;
          quick "silent on typed handlers" test_swallow_negative;
        ] );
      ( "no-raw-clock",
        [
          quick "fires on raw time sources" test_raw_clock_positive;
          quick "silent on Obs.Clock and in clock.ml" test_raw_clock_negative;
        ] );
      ( "no-lib-print",
        [
          quick "fires on implicit stdout" test_lib_print_positive;
          quick "silent on channels and in bin/" test_lib_print_negative;
        ] );
      ( "NO-ADHOC-LOG",
        [
          quick "fires on stderr writes in lib/" test_adhoc_log_positive;
          quick "silent on Obs.Log, channels, bin/ and lib/obs"
            test_adhoc_log_negative;
        ] );
      ( "no-float-eq",
        [
          quick "fires on float-literal comparison" test_float_eq_positive;
          quick "silent without literals" test_float_eq_negative;
        ] );
      ( "no-obj-magic",
        [
          quick "fires on Obj.magic" test_obj_magic_positive;
          quick "silent on ordinary code" test_obj_magic_negative;
        ] );
      ( "no-unsync-global",
        [
          quick "fires on unguarded top-level mutable state"
            test_unsync_global_positive;
          quick "silent on sync notes and domain-safe constructions"
            test_unsync_global_negative;
        ] );
      ( "mli-required",
        [
          quick "fires on a bare lib module" test_mli_required_positive;
          quick "silent on paired and out-of-scope files" test_mli_required_negative;
        ] );
      ( "parsing",
        [
          quick "syntax errors surface from lint_string" test_parse_failure;
          quick "the analyzer degrades them to PARSE-ERROR findings"
            test_parse_error_collected;
        ] );
      ( "exn-escape",
        [
          quick "flags a direct raise behind a Result val" test_exn_escape_direct;
          quick "follows the call graph, same-file and cross-module"
            test_exn_escape_transitive;
          quick "silent behind try/match-exception boundaries"
            test_exn_escape_absorbed;
          quick "exempts the Invalid_argument precondition idiom"
            test_exn_escape_exempt;
          quick "scoped to the solver/service layers" test_exn_escape_scope;
        ] );
      ( "sync-discipline",
        [
          quick "flags unlocked and wrong-mutex accesses"
            test_sync_discipline_flags_unlocked;
          quick "recognizes local Mutex.protect wrappers"
            test_sync_discipline_wrapper;
          quick "flags an annotation whose mutex does not exist"
            test_sync_discipline_missing_mutex;
        ] );
      ( "suppressions",
        [
          quick "a used syntactic suppression drops the finding"
            test_suppression_used_syntactic;
          quick "a used raise-site suppression drops the escape"
            test_suppression_used_semantic;
          quick "an unused suppression is reported" test_suppression_unused;
          quick "an unknown rule id is reported" test_suppression_unknown_rule;
          quick "a malformed payload suppresses nothing and is diagnosed"
            test_suppression_malformed;
        ] );
      ( "baseline",
        [
          quick "file-format round trip" test_baseline_round_trip;
          quick "ratchet: fresh and stale drift" test_baseline_ratchet;
          quick "prune ratchets allowances down, never up" test_baseline_prune;
        ] );
      ( "cache",
        [ quick "digest hit/miss, persistence, version guard" test_cache_roundtrip ] );
      ( "scan",
        [
          quick "warm cache re-parses nothing, byte-identical report"
            test_scan_warm_cache;
          quick "--jobs 1 and --jobs 4 agree byte-for-byte"
            test_scan_jobs_deterministic;
        ] );
      ("json", [ quick "lint.v1 shape" test_json_shape ]);
      ("sarif", [ quick "SARIF 2.1.0 shape" test_sarif_shape ]);
    ]
