(* Static-analysis suite: every sublint rule fires on a minimal inline
   fixture and stays silent on its clean counterpart; rule scoping and
   allowlisting are honoured; the baseline ratchet round-trips through
   its file format and detects both fresh findings and stale
   allowances; and the lint.v1 JSON record parses back with the
   documented shape. *)

open Test_helpers

let lint ~path src = Lint.Driver.lint_string ~path src

let count rule findings =
  List.length (List.filter (fun f -> String.equal f.Lint.Finding.rule rule) findings)

let check_fires msg rule ~path src =
  Alcotest.(check bool) msg true (count rule (lint ~path src) > 0)

let check_silent msg rule ~path src =
  Alcotest.(check int) msg 0 (count rule (lint ~path src))

(* ------------------------------------------------------------------ *)
(* NO-BARE-RAISE *)

let solver_path = "lib/numerics/fixture.ml"

let test_bare_raise_positive () =
  check_fires "failwith fires" "NO-BARE-RAISE" ~path:solver_path
    {|let f x = if x < 0 then failwith "neg" else x|};
  check_fires "invalid_arg fires" "NO-BARE-RAISE" ~path:solver_path
    {|let f x = if x < 0 then invalid_arg "neg" else x|};
  check_fires "assert false fires" "NO-BARE-RAISE" ~path:solver_path
    {|let f = function Some x -> x | None -> assert false|};
  check_fires "raise outside the taxonomy fires" "NO-BARE-RAISE" ~path:solver_path
    {|let f () = raise Exit|}

let test_bare_raise_negative () =
  check_silent "Result-typed failure is clean" "NO-BARE-RAISE" ~path:solver_path
    {|let f x = if x < 0 then Error `Negative else Ok x|};
  check_silent "typed taxonomy raise is allowed" "NO-BARE-RAISE" ~path:solver_path
    {|let f () = raise (No_convergence "10 iterations")|};
  check_silent "re-raising a caught exception is allowed" "NO-BARE-RAISE"
    ~path:solver_path
    {|let f g = try g () with Division_by_zero as e -> print_count (); raise e|}

let test_bare_raise_scope () =
  (* the rule covers solver layers only, and exempts the sanctioned
     precondition module *)
  check_silent "lib/econ is out of scope" "NO-BARE-RAISE" ~path:"lib/econ/fixture.ml"
    {|let f () = failwith "boom"|};
  check_silent "bin/ is out of scope" "NO-BARE-RAISE" ~path:"bin/fixture.ml"
    {|let f () = failwith "boom"|};
  check_silent "precondition.ml is the sanctioned site" "NO-BARE-RAISE"
    ~path:"lib/numerics/precondition.ml"
    {|let fail ~fn detail = invalid_arg (fn ^ ": " ^ detail)|}

(* ------------------------------------------------------------------ *)
(* NO-SWALLOW *)

let test_swallow_positive () =
  check_fires "catch-all try fires" "NO-SWALLOW" ~path:"lib/core/fixture.ml"
    {|let f g = try g 0. >= 0. with _ -> false|};
  check_fires "catch-all match-exception fires" "NO-SWALLOW"
    ~path:"lib/core/fixture.ml"
    {|let f g = match g () with x -> x | exception _ -> 0.|}

let test_swallow_negative () =
  check_silent "typed handler is clean" "NO-SWALLOW" ~path:"lib/core/fixture.ml"
    {|let f g = try Some (g ()) with Not_found -> None|};
  check_silent "typed match-exception handler is clean" "NO-SWALLOW"
    ~path:"lib/core/fixture.ml"
    {|let f g = match g () with x -> x | exception Invalid_argument _ -> 0.|}

(* ------------------------------------------------------------------ *)
(* NO-RAW-CLOCK *)

let test_raw_clock_positive () =
  check_fires "Unix.gettimeofday fires" "NO-RAW-CLOCK" ~path:"lib/core/fixture.ml"
    {|let now () = Unix.gettimeofday ()|};
  check_fires "Sys.time fires" "NO-RAW-CLOCK" ~path:"bench/fixture.ml"
    {|let cpu () = Sys.time ()|}

let test_raw_clock_negative () =
  check_silent "Obs.Clock is the sanctioned source" "NO-RAW-CLOCK"
    ~path:"lib/core/fixture.ml" {|let now () = Obs.Clock.now ()|};
  check_silent "clock.ml itself is exempt" "NO-RAW-CLOCK" ~path:"lib/obs/clock.ml"
    {|let now () = Unix.gettimeofday ()|}

(* ------------------------------------------------------------------ *)
(* NO-LIB-PRINT *)

let test_lib_print_positive () =
  check_fires "Printf.printf fires" "NO-LIB-PRINT" ~path:"lib/game/fixture.ml"
    {|let f () = Printf.printf "sweep %d\n" 3|};
  check_fires "print_endline fires" "NO-LIB-PRINT" ~path:"lib/game/fixture.ml"
    {|let f () = print_endline "done"|};
  check_fires "Format.printf fires" "NO-LIB-PRINT" ~path:"lib/experiments/fixture.ml"
    {|let f pp c = Format.printf "%a" pp c|}

let test_lib_print_negative () =
  check_silent "fprintf to a caller channel is clean" "NO-LIB-PRINT"
    ~path:"lib/game/fixture.ml"
    {|let f out = Printf.fprintf out "sweep %d\n" 3|};
  check_silent "sprintf is clean" "NO-LIB-PRINT" ~path:"lib/game/fixture.ml"
    {|let f n = Printf.sprintf "%d" n|};
  check_silent "bin/ may own stdout" "NO-LIB-PRINT" ~path:"bin/fixture.ml"
    {|let f () = print_endline "done"|};
  check_silent "export.ml is the sanctioned stdout sink" "NO-LIB-PRINT"
    ~path:"lib/obs/export.ml" {|let f line = print_endline line|}

(* ------------------------------------------------------------------ *)
(* NO-ADHOC-LOG *)

let test_adhoc_log_positive () =
  check_fires "prerr_endline fires" "NO-ADHOC-LOG" ~path:"lib/service/fixture.ml"
    {|let f () = prerr_endline "oops"|};
  check_fires "Printf.eprintf fires" "NO-ADHOC-LOG" ~path:"lib/service/fixture.ml"
    {|let f n = Printf.eprintf "bad %d\n" n|};
  check_fires "Format.eprintf fires" "NO-ADHOC-LOG" ~path:"lib/runner/fixture.ml"
    {|let f pp c = Format.eprintf "%a" pp c|};
  check_fires "writing to stderr directly fires" "NO-ADHOC-LOG"
    ~path:"lib/service/fixture.ml"
    {|let f line = output_string stderr line|};
  check_fires "qualified prerr fires" "NO-ADHOC-LOG" ~path:"lib/game/fixture.ml"
    {|let f () = Stdlib.prerr_endline "oops"|}

let test_adhoc_log_negative () =
  check_silent "Obs.Log calls are the sanctioned path" "NO-ADHOC-LOG"
    ~path:"lib/service/fixture.ml"
    {|let f msg = Obs.Log.warn ~m:"server" msg|};
  check_silent "fprintf to a caller channel is clean" "NO-ADHOC-LOG"
    ~path:"lib/service/fixture.ml"
    {|let f out = Printf.fprintf out "detail %d\n" 3|};
  check_silent "lib/obs implements the logger" "NO-ADHOC-LOG"
    ~path:"lib/obs/log.ml" {|let f e = output_string stderr e|};
  check_silent "bin/ may own stderr" "NO-ADHOC-LOG" ~path:"bin/fixture.ml"
    {|let f () = prerr_endline "usage: ..."|};
  check_silent "test code may own stderr" "NO-ADHOC-LOG"
    ~path:"test/service/fixture.ml" {|let f () = Printf.eprintf "dbg\n"|}

(* ------------------------------------------------------------------ *)
(* NO-FLOAT-EQ *)

let test_float_eq_positive () =
  let findings = lint ~path:"lib/numerics/fixture.ml" {|let f x = x = 0.|} in
  Alcotest.(check int) "float-literal = fires" 1 (count "NO-FLOAT-EQ" findings);
  (match findings with
  | [ f ] ->
    Alcotest.(check string) "severity is warning" "warning"
      (Lint.Finding.severity_name f.Lint.Finding.severity)
  | _ -> Alcotest.fail "expected exactly one finding");
  check_fires "literal on the left fires" "NO-FLOAT-EQ" ~path:"lib/numerics/fixture.ml"
    {|let f x = 1.0 <> x|};
  check_fires "physical equality fires" "NO-FLOAT-EQ" ~path:"lib/numerics/fixture.ml"
    {|let f x = x == 0.|}

let test_float_eq_negative () =
  check_silent "no literal involved is clean" "NO-FLOAT-EQ"
    ~path:"lib/numerics/fixture.ml" {|let f x y = x = y|};
  check_silent "integer literals are clean" "NO-FLOAT-EQ"
    ~path:"lib/numerics/fixture.ml" {|let f n = n = 0|};
  check_silent "tolerance comparison is clean" "NO-FLOAT-EQ"
    ~path:"lib/numerics/fixture.ml" {|let f x = Float.abs x <= 1e-12|}

(* ------------------------------------------------------------------ *)
(* NO-OBJ-MAGIC *)

let test_obj_magic_positive () =
  check_fires "Obj.magic fires" "NO-OBJ-MAGIC" ~path:"lib/core/fixture.ml"
    {|let f x = (Obj.magic x : int)|}

let test_obj_magic_negative () =
  check_silent "ordinary coercion is clean" "NO-OBJ-MAGIC" ~path:"lib/core/fixture.ml"
    {|let f x = (x :> int)|}

(* ------------------------------------------------------------------ *)
(* NO-UNSYNC-GLOBAL *)

let pool_path = "lib/parallel/fixture.ml"

let test_unsync_global_positive () =
  check_fires "top-level ref fires" "NO-UNSYNC-GLOBAL" ~path:pool_path
    {|let counter = ref 0|};
  check_fires "top-level Hashtbl fires" "NO-UNSYNC-GLOBAL" ~path:pool_path
    {|let cache : (int, float) Hashtbl.t = Hashtbl.create 16|};
  check_fires "closure-captured ref fires" "NO-UNSYNC-GLOBAL" ~path:pool_path
    {|let next = let n = ref 0 in fun () -> incr n; !n|};
  check_fires "Array.make scratch fires" "NO-UNSYNC-GLOBAL" ~path:pool_path
    {|let scratch = Array.make 64 0.|};
  check_fires "sync attribute without a note does not exempt" "NO-UNSYNC-GLOBAL"
    ~path:pool_path {|let counter = ref 0 [@@sync]|};
  check_fires "nested module globals fire" "NO-UNSYNC-GLOBAL" ~path:pool_path
    {|module Inner = struct let seen = Hashtbl.create 4 end|}

let test_unsync_global_negative () =
  check_silent "a documented sync note exempts" "NO-UNSYNC-GLOBAL" ~path:pool_path
    {|let counter = ref 0 [@@sync "guarded by [lock]"]|};
  check_silent "Atomic is inherently safe" "NO-UNSYNC-GLOBAL" ~path:pool_path
    {|let hits = Atomic.make 0|};
  check_silent "Mutex/Condition are inherently safe" "NO-UNSYNC-GLOBAL"
    ~path:pool_path {|let lock = Mutex.create ()
let work = Condition.create ()|};
  check_silent "Domain.DLS state is domain-local" "NO-UNSYNC-GLOBAL" ~path:pool_path
    {|let stack_key = Domain.DLS.new_key (fun () -> ref [])|};
  check_silent "state created inside a function is local" "NO-UNSYNC-GLOBAL"
    ~path:pool_path {|let f xs = let seen = Hashtbl.create 8 in List.iter (Hashtbl.add seen ()) xs|};
  check_silent "constant array literals are the table idiom" "NO-UNSYNC-GLOBAL"
    ~path:pool_path {|let prices = [| 0.2; 0.5; 0.8 |]|};
  check_silent "test code is out of scope" "NO-UNSYNC-GLOBAL"
    ~path:"bin/fixture.ml" {|let counter = ref 0|}

(* ------------------------------------------------------------------ *)
(* MLI-REQUIRED *)

let test_mli_required_positive () =
  let findings =
    Lint.Rules.mli_required ~files:[ "lib/foo/a.ml"; "lib/foo/b.ml"; "lib/foo/b.mli" ]
  in
  Alcotest.(check int) "one missing interface" 1 (count "MLI-REQUIRED" findings);
  match findings with
  | [ f ] -> Alcotest.(check string) "names the bare module" "lib/foo/a.ml" f.Lint.Finding.file
  | _ -> Alcotest.fail "expected exactly one finding"

let test_mli_required_negative () =
  Alcotest.(check int) "paired module is clean" 0
    (List.length
       (Lint.Rules.mli_required ~files:[ "lib/foo/a.ml"; "lib/foo/a.mli" ]));
  Alcotest.(check int) "executables are out of scope" 0
    (List.length (Lint.Rules.mli_required ~files:[ "bin/main.ml"; "bench/main.ml" ]))

(* ------------------------------------------------------------------ *)
(* parsing *)

let test_parse_failure () =
  match lint ~path:"lib/core/fixture.ml" "let f = (" with
  | _ -> Alcotest.fail "expected Parse_failed"
  | exception Lint.Driver.Parse_failed msg ->
    check_true "message names the file" (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* baseline ratchet *)

let two_findings () =
  lint ~path:solver_path {|let f () = failwith "a"
let g () = invalid_arg "b"|}

let test_baseline_round_trip () =
  let findings = two_findings () in
  let b = Lint.Baseline.of_findings findings in
  let reparsed = Lint.Baseline.of_string (Lint.Baseline.to_string b) in
  Alcotest.(check int) "total survives the round trip" (Lint.Baseline.total b)
    (Lint.Baseline.total reparsed);
  Alcotest.(check int) "per-key allowance survives" 2
    (Lint.Baseline.count reparsed ~rule:"NO-BARE-RAISE" ~file:solver_path);
  match Lint.Baseline.of_string "3 NO-BARE-RAISE\n" with
  | _ -> Alcotest.fail "expected Malformed"
  | exception Lint.Baseline.Malformed _ -> ()

let test_baseline_ratchet () =
  let findings = two_findings () in
  let b = Lint.Baseline.of_findings findings in
  (* same findings: clean *)
  check_true "allowance absorbs the findings"
    (Lint.Baseline.clean (Lint.Baseline.diff ~baseline:b findings));
  (* one extra finding in the same file: exactly one fresh *)
  let more =
    findings
    @ lint ~path:solver_path {|let h () = failwith "c"|}
  in
  let drift = Lint.Baseline.diff ~baseline:b more in
  Alcotest.(check int) "one fresh finding" 1
    (List.length drift.Lint.Baseline.fresh);
  check_true "drift is not clean" (not (Lint.Baseline.clean drift));
  (* a fixed violation leaves a stale allowance: deliberate regeneration *)
  let drift = Lint.Baseline.diff ~baseline:b (List.tl findings) in
  Alcotest.(check int) "stale allowance detected" 1
    (List.length drift.Lint.Baseline.stale);
  check_true "stale baseline is not clean" (not (Lint.Baseline.clean drift))

(* ------------------------------------------------------------------ *)
(* lint.v1 JSON *)

let test_json_shape () =
  let findings = two_findings () in
  let report =
    { Lint.Driver.findings; files_scanned = 1; parse_errors = [] }
  in
  let drift = Lint.Baseline.diff ~baseline:Lint.Baseline.empty findings in
  let json = Lint.Driver.json_report ~root:"." report ~drift in
  (* the record must survive the repo's own JSON parser *)
  let parsed = Obs.Json.of_string (Obs.Json.to_string json) in
  let member name =
    match Obs.Json.member name parsed with
    | Some v -> v
    | None -> Alcotest.failf "missing %s" name
  in
  (match member "schema" with
  | Obs.Json.Str s -> Alcotest.(check string) "schema tag" "lint.v1" s
  | _ -> Alcotest.fail "schema is not a string");
  (match Obs.Json.to_list (member "rules") with
  | Some rules ->
    Alcotest.(check int) "all nine rules described" 9 (List.length rules);
    List.iter
      (fun r ->
        List.iter
          (fun field ->
            if Obs.Json.member field r = None then Alcotest.failf "rule lacks %s" field)
          [ "id"; "severity"; "doc"; "applies_to"; "exempt" ])
      rules
  | None -> Alcotest.fail "rules is not an array");
  (match Obs.Json.to_list (member "findings") with
  | Some fs ->
    Alcotest.(check int) "every finding exported" (List.length findings)
      (List.length fs);
    List.iter
      (fun f ->
        List.iter
          (fun field ->
            if Obs.Json.member field f = None then
              Alcotest.failf "finding lacks %s" field)
          [ "rule"; "severity"; "file"; "line"; "col"; "message"; "fresh" ])
      fs
  | None -> Alcotest.fail "findings is not an array");
  match Obs.Json.member "total" (member "summary") with
  | Some total ->
    Alcotest.(check (option (float 0.)))
      "summary total" (Some 2.) (Obs.Json.to_float total)
  | None -> Alcotest.fail "summary lacks total"

let () =
  Alcotest.run "lint"
    [
      ( "no-bare-raise",
        [
          quick "fires on failwith/invalid_arg/assert false" test_bare_raise_positive;
          quick "silent on typed errors" test_bare_raise_negative;
          quick "scoped to solver layers" test_bare_raise_scope;
        ] );
      ( "no-swallow",
        [
          quick "fires on catch-alls" test_swallow_positive;
          quick "silent on typed handlers" test_swallow_negative;
        ] );
      ( "no-raw-clock",
        [
          quick "fires on raw time sources" test_raw_clock_positive;
          quick "silent on Obs.Clock and in clock.ml" test_raw_clock_negative;
        ] );
      ( "no-lib-print",
        [
          quick "fires on implicit stdout" test_lib_print_positive;
          quick "silent on channels and in bin/" test_lib_print_negative;
        ] );
      ( "NO-ADHOC-LOG",
        [
          quick "fires on stderr writes in lib/" test_adhoc_log_positive;
          quick "silent on Obs.Log, channels, bin/ and lib/obs"
            test_adhoc_log_negative;
        ] );
      ( "no-float-eq",
        [
          quick "fires on float-literal comparison" test_float_eq_positive;
          quick "silent without literals" test_float_eq_negative;
        ] );
      ( "no-obj-magic",
        [
          quick "fires on Obj.magic" test_obj_magic_positive;
          quick "silent on ordinary code" test_obj_magic_negative;
        ] );
      ( "no-unsync-global",
        [
          quick "fires on unguarded top-level mutable state"
            test_unsync_global_positive;
          quick "silent on sync notes and domain-safe constructions"
            test_unsync_global_negative;
        ] );
      ( "mli-required",
        [
          quick "fires on a bare lib module" test_mli_required_positive;
          quick "silent on paired and out-of-scope files" test_mli_required_negative;
        ] );
      ("parsing", [ quick "syntax errors surface" test_parse_failure ]);
      ( "baseline",
        [
          quick "file-format round trip" test_baseline_round_trip;
          quick "ratchet: fresh and stale drift" test_baseline_ratchet;
        ] );
      ("json", [ quick "lint.v1 shape" test_json_shape ]);
    ]
