let () =
  Alcotest.run "report"
    [
      Suite_table.suite;
      Suite_csv.suite;
      Suite_fsio.suite;
      Suite_series.suite;
      Suite_ascii_plot.suite;
    ]
