open Report
open Test_helpers

let fresh_dir () =
  let dir = Filename.temp_file "fsio_test" "" in
  Sys.remove dir;
  dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_mkdir_p () =
  let dir = fresh_dir () in
  let deep = Filename.concat (Filename.concat dir "a") "b" in
  check_true "creates nested dirs" (Fsio.mkdir_p deep = Ok ());
  check_true "directory exists" (Sys.is_directory deep);
  check_true "idempotent" (Fsio.mkdir_p deep = Ok ())

let test_mkdir_p_blocked_by_file () =
  let file = Filename.temp_file "fsio_block" "" in
  (* a plain file occupies the path: must be an Error, not silence *)
  match Fsio.mkdir_p (Filename.concat file "child") with
  | Ok () -> Alcotest.fail "expected Error when a file blocks the path"
  | Error msg -> check_true "error mentions something" (String.length msg > 0)

let test_write_atomic_success () =
  let dir = fresh_dir () in
  let path = Filename.concat (Filename.concat dir "sub") "out.txt" in
  check_true "write ok"
    (Fsio.write_atomic ~path (fun oc -> output_string oc "hello") = Ok ());
  Alcotest.(check string) "content" "hello" (read_file path);
  check_true "no temp file left" (not (Sys.file_exists (path ^ ".tmp")))

let test_write_atomic_crash_simulation () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "out.txt" in
  check_true "seed write"
    (Fsio.write_atomic ~path (fun oc -> output_string oc "intact") = Ok ());
  (* the writer dies mid-write: the exception must propagate, the
     partial temp file must be left as evidence, and the final path
     must still hold the previous content *)
  (match
     Fsio.write_atomic ~path (fun oc ->
         output_string oc "partial garbage";
         failwith "simulated crash")
   with
  | _ -> Alcotest.fail "expected the writer's exception to propagate"
  | exception Failure msg -> Alcotest.(check string) "same exn" "simulated crash" msg);
  check_true "temp file left as evidence" (Sys.file_exists (path ^ ".tmp"));
  Alcotest.(check string) "final path intact" "intact" (read_file path);
  (* a later successful write recovers: temp replaced, rename wins *)
  check_true "recovery write"
    (Fsio.write_atomic ~path (fun oc -> output_string oc "recovered") = Ok ());
  Alcotest.(check string) "recovered content" "recovered" (read_file path);
  check_true "temp cleaned by recovery" (not (Sys.file_exists (path ^ ".tmp")))

let test_write_atomic_unwritable () =
  let file = Filename.temp_file "fsio_notdir" "" in
  (* parent "directory" is a plain file: surfaced as Error *)
  let path = Filename.concat (Filename.concat file "child") "out.txt" in
  (match Fsio.write_atomic ~path (fun _ -> ()) with
  | Ok () -> Alcotest.fail "expected Error for unwritable parent"
  | Error _ -> ());
  match Fsio.write_atomic_exn ~path (fun _ -> ()) with
  | () -> Alcotest.fail "expected Sys_error for unwritable parent"
  | exception Sys_error _ -> ()

let test_write_atomic_durable () =
  let dir = fresh_dir () in
  let path = Filename.concat (Filename.concat dir "sub") "out.txt" in
  (* same contract as the plain write, plus the fsync barriers; the
     barriers themselves can only be proven by pulling the plug, so
     this pins the observable behavior of the durable path *)
  check_true "durable write ok"
    (Fsio.write_atomic ~durable:true ~path (fun oc -> output_string oc "persisted") = Ok ());
  Alcotest.(check string) "content" "persisted" (read_file path);
  check_true "no temp file left" (not (Sys.file_exists (path ^ ".tmp")));
  check_true "durable overwrite ok"
    (Fsio.write_atomic ~durable:true ~path (fun oc -> output_string oc "again") = Ok ());
  Alcotest.(check string) "overwritten" "again" (read_file path)

let test_fsync_helpers () =
  let dir = fresh_dir () in
  check_true "mkdir" (Fsio.mkdir_p dir = Ok ());
  let path = Filename.concat dir "appended.txt" in
  let oc = open_out path in
  output_string oc "first record\n";
  check_true "fsync_channel ok" (Fsio.fsync_channel oc = Ok ());
  (* the sync flushed the channel: the bytes are visible to a reader
     while the channel is still open *)
  Alcotest.(check string) "flushed to disk" "first record\n" (read_file path);
  close_out oc;
  check_true "fsync_dir ok" (Fsio.fsync_dir dir = Ok ());
  check_true "fsync_dir of empty path syncs cwd" (Fsio.fsync_dir "" = Ok ());
  match Fsio.fsync_dir (Filename.concat dir "does-not-exist") with
  | Ok () -> Alcotest.fail "expected Error for a missing directory"
  | Error msg -> check_true "error is descriptive" (String.length msg > 0)

let suite =
  ( "fsio",
    [
      quick "mkdir_p" test_mkdir_p;
      quick "mkdir_p blocked by file" test_mkdir_p_blocked_by_file;
      quick "write_atomic success" test_write_atomic_success;
      quick "write_atomic crash simulation" test_write_atomic_crash_simulation;
      quick "write_atomic unwritable" test_write_atomic_unwritable;
      quick "write_atomic durable" test_write_atomic_durable;
      quick "fsync helpers" test_fsync_helpers;
    ] )
