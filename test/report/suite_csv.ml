open Report
open Test_helpers

let test_parse_simple () =
  check_true "two rows"
    (Csv.parse_string "a,b\n1,2\n" = [ [ "a"; "b" ]; [ "1"; "2" ] ]);
  check_true "no trailing newline" (Csv.parse_string "a,b" = [ [ "a"; "b" ] ])

let test_parse_quoted () =
  check_true "embedded comma" (Csv.parse_string "\"a,b\",c\n" = [ [ "a,b"; "c" ] ]);
  check_true "escaped quote" (Csv.parse_string "\"a\"\"b\"\n" = [ [ "a\"b" ] ]);
  check_true "embedded newline" (Csv.parse_string "\"a\nb\",c\n" = [ [ "a\nb"; "c" ] ])

let test_parse_quote_edge_cases () =
  (* a quote NOT at the start of a cell is a literal character *)
  check_true "mid-cell quote literal"
    (Csv.parse_string "a\"b\",c\n" = [ [ "a\"b\""; "c" ] ]);
  (* after the closing quote the cell continues unquoted *)
  check_true "post-quote continuation"
    (Csv.parse_string "\"ab\"x,y\n" = [ [ "abx"; "y" ] ]);
  check_true "empty quoted cell" (Csv.parse_string "\"\",x\n" = [ [ ""; "x" ] ])

let test_parse_unterminated_quote () =
  (match Csv.parse_string "a,\"never closed\nmore" with
  | _ -> Alcotest.fail "expected Malformed"
  | exception Csv.Malformed msg ->
    check_true "message locates the open quote"
      (let contains_sub s sub =
         let n = String.length sub in
         let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
         go 0
       in
       contains_sub msg "row 1"));
  match Csv.parse_string "x,y\n\"fine\",\"broken" with
  | _ -> Alcotest.fail "expected Malformed on row 2"
  | exception Csv.Malformed _ -> ()

let test_parse_crlf () =
  check_true "CRLF tolerated" (Csv.parse_string "a,b\r\n1,2\r\n" = [ [ "a"; "b" ]; [ "1"; "2" ] ])

let test_write_read_roundtrip () =
  let dir = Filename.temp_file "csv_test" "" in
  Sys.remove dir;
  let path = Filename.concat (Filename.concat dir "deep") "t.csv" in
  let t = Table.make ~columns:[ "x"; "label" ] in
  Table.add_row t [ "1.5"; "hello, world" ];
  Csv.write ~path t;
  let rows = Csv.read ~path in
  check_true "roundtrip with directories created"
    (rows = [ [ "x"; "label" ]; [ "1.5"; "hello, world" ] ]);
  Sys.remove path

let test_write_no_temp_left () =
  let dir = Filename.temp_file "csv_atomic" "" in
  Sys.remove dir;
  let path = Filename.concat dir "t.csv" in
  let t = Table.make ~columns:[ "x" ] in
  Table.add_row t [ "1" ];
  Csv.write ~path t;
  Test_helpers.check_true "no temp file left" (not (Sys.file_exists (path ^ ".tmp")));
  Sys.remove path

let suite =
  ( "csv",
    [
      quick "simple" test_parse_simple;
      quick "quoted" test_parse_quoted;
      quick "quote edge cases" test_parse_quote_edge_cases;
      quick "unterminated quote" test_parse_unterminated_quote;
      quick "crlf" test_parse_crlf;
      quick "write/read roundtrip" test_write_read_roundtrip;
      quick "write is atomic" test_write_no_temp_left;
    ] )
