open Subsidization
open Test_helpers
module Vec = Numerics.Vec
module Mat = Numerics.Mat
module Dual = Numerics.Dual

(* The exact (dual-number) derivative paths against the legacy
   finite-difference stencils they replace: the continuation solver and
   the Theorem-6/8 sensitivity analysis are only as sound as these
   agree. FD carries O(h^2) truncation error through a nested
   equilibrium solve, so the pins use a looser band than the pure-kernel
   tests in test/econ. *)

let rel_close ~tol expected actual =
  Float.abs (actual -. expected) <= tol *. (1. +. Float.abs expected)

let game () =
  Subsidy_game.make (Fixtures.paper3 ()) ~price:0.8 ~cap:0.6

let interior_profile g =
  let n = Subsidy_game.dim g in
  Vec.init n (fun i -> 0.1 +. (0.05 *. float_of_int i))

let test_jacobian_exact_vs_fd () =
  let g = game () in
  let s = interior_profile g in
  let exact = Subsidy_game.marginal_jacobian_exact g ~subsidies:s in
  let fd = Sensitivity.marginal_jacobian ~h:1e-6 g ~subsidies:s in
  let n = Subsidy_game.dim g in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      check_true
        (Printf.sprintf "J(%d,%d): exact %.8g vs fd %.8g" i j
           (Mat.get exact i j) (Mat.get fd i j))
        (rel_close ~tol:1e-4 (Mat.get fd i j) (Mat.get exact i j))
    done
  done;
  (* without an explicit h the dispatch must pick the exact path (the
     warm phi cache moves the repeat solve by last-bit amounts, so
     "equal" means to solver tolerance, not bit-identical) *)
  let dispatched = Sensitivity.marginal_jacobian g ~subsidies:s in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      check_true "dispatch = exact"
        (rel_close ~tol:1e-9 (Mat.get exact i j) (Mat.get dispatched i j))
    done
  done

let test_jacobian_legacy_mode_stencils () =
  let g = game () in
  let s = interior_profile g in
  let exact = Sensitivity.marginal_jacobian g ~subsidies:s in
  Numerics.Continuation.with_mode Numerics.Continuation.Legacy (fun () ->
      Numerics.Diff.reset_stats ();
      let fd = Sensitivity.marginal_jacobian g ~subsidies:s in
      check_true "legacy mode spends stencils"
        ((Numerics.Diff.stats ()).Numerics.Diff.estimates > 0.);
      check_true "legacy agrees with exact"
        (rel_close ~tol:1e-4 (Mat.get exact 0 0) (Mat.get fd 0 0)))

let test_du_dprice_exact_vs_fd () =
  let g = game () in
  let s = interior_profile g in
  let exact = Sensitivity.du_dprice g ~subsidies:s in
  let fd = Sensitivity.du_dprice ~h:1e-6 g ~subsidies:s in
  Array.iteri
    (fun k fdk ->
      check_true
        (Printf.sprintf "du_%d/dp: exact %.8g vs fd %.8g" k exact.(k) fdk)
        (rel_close ~tol:1e-4 fdk exact.(k)))
    fd

let test_fused_marginal_pins () =
  let g = game () in
  let s = interior_profile g in
  let n = Subsidy_game.dim g in
  for i = 0 to n - 1 do
    let u, du = Subsidy_game.fused_marginal g i s s.(i) in
    (* value pin: the fused objective IS the analytic marginal utility *)
    check_true
      (Printf.sprintf "fused value %d" i)
      (rel_close ~tol:1e-9 (Subsidy_game.marginal_utility g ~subsidies:s i) u);
    (* slope pin: central difference of the fused value in s_i *)
    let h = 1e-5 in
    let up, _ = Subsidy_game.fused_marginal g i s (s.(i) +. h) in
    let um, _ = Subsidy_game.fused_marginal g i s (s.(i) -. h) in
    check_true
      (Printf.sprintf "fused slope %d: %.8g vs stencil %.8g" i du
         ((up -. um) /. (2. *. h)))
      (rel_close ~tol:1e-4 ((up -. um) /. (2. *. h)) du)
  done

let test_duopoly_fused_marginal_pins () =
  let cps = Scenario.fig7_11_cps () in
  let d = Duopoly.make ~cps ~capacity_a:0.5 ~capacity_b:0.5 ~cap:1. () in
  let prices = (0.9, 1.1) in
  let n = Array.length cps in
  let s = Vec.init n (fun i -> 0.05 +. (0.03 *. float_of_int i)) in
  for i = 0 to n - 1 do
    let _, du = Duopoly.fused_marginal d ~prices i s s.(i) in
    let h = 1e-5 in
    let up, _ = Duopoly.fused_marginal d ~prices i s (s.(i) +. h) in
    let um, _ = Duopoly.fused_marginal d ~prices i s (s.(i) -. h) in
    check_true
      (Printf.sprintf "duopoly fused slope %d: %.8g vs stencil %.8g" i du
         ((up -. um) /. (2. *. h)))
      (rel_close ~tol:1e-4 ((up -. um) /. (2. *. h)) du)
  done

let test_marginal_utilities_d_primal () =
  let g = game () in
  let s = interior_profile g in
  let primal = Subsidy_game.marginal_utilities g ~subsidies:s in
  let col = Subsidy_game.marginal_utilities_d g ~subsidies:s 0 in
  Array.iteri
    (fun k (uk : float) ->
      check_true
        (Printf.sprintf "dual primal %d" k)
        (rel_close ~tol:1e-9 uk (Dual.v col.(k))))
    primal

let test_nash_agrees_across_modes () =
  (* the end-to-end pin: the fused continuation path and the legacy
     grid-scan respond must find the same equilibrium *)
  let g = game () in
  let fast = Nash.solve g in
  let legacy =
    Numerics.Continuation.with_mode Numerics.Continuation.Legacy (fun () ->
        Nash.solve g)
  in
  check_true "both converged" (fast.Nash.converged && legacy.Nash.converged);
  Array.iteri
    (fun i si ->
      check_true
        (Printf.sprintf "s_%d: fast %.8g vs legacy %.8g" i si
           legacy.Nash.subsidies.(i))
        (Float.abs (si -. legacy.Nash.subsidies.(i)) <= 1e-5))
    fast.Nash.subsidies

let suite =
  ( "exact-derivs",
    [
      quick "jacobian: exact vs stencil" test_jacobian_exact_vs_fd;
      quick "jacobian: legacy mode stencils" test_jacobian_legacy_mode_stencils;
      quick "du/dprice: exact vs stencil" test_du_dprice_exact_vs_fd;
      quick "fused marginal pins" test_fused_marginal_pins;
      quick "duopoly fused marginal pins" test_duopoly_fused_marginal_pins;
      quick "marginal_utilities_d primal" test_marginal_utilities_d_primal;
      quick "nash agrees across modes" test_nash_agrees_across_modes;
    ] )
