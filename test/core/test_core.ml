let () =
  Alcotest.run "subsidization-core"
    [
      Suite_system.suite;
      Suite_one_sided.suite;
      Suite_subsidy_game.suite;
      Suite_nash.suite;
      Suite_sensitivity.suite;
      Suite_exact_derivs.suite;
      Suite_revenue.suite;
      Suite_welfare.suite;
      Suite_policy.suite;
      Suite_capacity.suite;
      Suite_scenario.suite;
      Suite_theorems.suite;
      Suite_dynamics.suite;
      Suite_duopoly.suite;
      Suite_regulator.suite;
      Suite_longrun.suite;
      Suite_edge.suite;
    ]
