(* sublint: the repo's own static-analysis gate.

   Two-phase project analyzer: every .ml/.mli under the requested
   directories is parsed into a per-file index (in parallel, served
   from the content-digest lint.cache when warm), then the syntactic
   rule set, the interprocedural EXN-ESCAPE / SYNC-DISCIPLINE rules,
   suppression accounting and the committed lint.baseline ratchet run
   over the whole project. Exits non-zero on any fresh violation or
   stale baseline entry; unparseable files surface as PARSE-ERROR
   findings, not aborts. *)

let usage =
  "sublint [options] [dir ...]\n\
   Static-analysis pass enforcing the solver-layer invariants (DESIGN §10/§15).\n\
   Scans lib/ bin/ bench/ by default; exits 1 on findings beyond the\n\
   committed baseline and on stale baseline entries."

let baselinable (f : Lint.Finding.t) =
  match Lint.Rules.find f.Lint.Finding.rule with
  | Some r -> r.Lint.Rules.baselinable
  | None -> true

let () =
  let root = ref "." in
  let baseline_path = ref "lint.baseline" in
  let json_path = ref "" in
  let sarif_path = ref "" in
  let cache_path = ref "lint.cache" in
  let no_cache = ref false in
  let update = ref false in
  let prune = ref false in
  let show_all = ref false in
  let dirs = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root to scan from (default .)");
      ( "--baseline",
        Arg.Set_string baseline_path,
        "PATH baseline file, relative to the cwd (default lint.baseline)" );
      ( "--json",
        Arg.Set_string json_path,
        "PATH write the lint.v1 JSON record here ('-' for stdout)" );
      ( "--sarif",
        Arg.Set_string sarif_path,
        "PATH write a SARIF 2.1.0 report here ('-' for stdout)" );
      ( "--jobs",
        Arg.Int Parallel.Runtime.set_jobs,
        "N domains for the parse/index phase (default: all cores)" );
      ( "--cache",
        Arg.Set_string cache_path,
        "PATH incremental index cache (default lint.cache)" );
      ( "--no-cache",
        Arg.Set no_cache,
        " neither read nor write the incremental cache" );
      ( "--update-baseline",
        Arg.Set update,
        " regenerate the baseline from the current findings and exit 0 \
         (semantic rules are never baselined)" );
      ( "--prune-baseline",
        Arg.Set prune,
        " drop stale baseline entries (allowances are only ever lowered), \
         then report as usual" );
      ("--all", Arg.Set show_all, " print baselined findings too, not just new ones");
    ]
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  let dirs =
    match List.rev !dirs with [] -> [ "lib"; "bin"; "bench" ] | ds -> ds
  in
  let cache =
    if !no_cache then None
    else Some (Lint.Cache.load ~version:Lint.Driver.cache_version !cache_path)
  in
  let report = Lint.Driver.scan ?cache ~root:!root ~dirs () in
  (match cache with
  | None -> ()
  | Some c -> (
    match Lint.Cache.save c !cache_path with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "sublint: cannot write cache %s: %s\n" !cache_path msg));
  let baseline =
    if !update then Lint.Baseline.empty
    else
      match Lint.Baseline.load ~path:!baseline_path with
      | b -> b
      | exception Lint.Baseline.Malformed msg ->
        Printf.eprintf "sublint: malformed baseline %s: %s\n" !baseline_path msg;
        exit 2
  in
  if !update then begin
    let allow = List.filter baselinable report.Lint.Driver.findings in
    Lint.Baseline.save ~path:!baseline_path (Lint.Baseline.of_findings allow);
    let drift = Lint.Baseline.diff ~baseline report.Lint.Driver.findings in
    Printf.printf
      "%s\nsublint: wrote %d allowances to %s (%d findings of non-baselinable \
       rules left active)\n"
      (Lint.Driver.summary report ~drift)
      (List.length allow) !baseline_path
      (List.length report.Lint.Driver.findings - List.length allow);
    exit 0
  end;
  let baseline =
    if !prune then begin
      let pruned = Lint.Baseline.prune baseline report.Lint.Driver.findings in
      Lint.Baseline.save ~path:!baseline_path pruned;
      Printf.printf "sublint: pruned %d stale allowance(s) from %s (%d -> %d)\n"
        (Lint.Baseline.total baseline - Lint.Baseline.total pruned)
        !baseline_path
        (Lint.Baseline.total baseline)
        (Lint.Baseline.total pruned);
      pruned
    end
    else baseline
  in
  let drift = Lint.Baseline.diff ~baseline report.Lint.Driver.findings in
  let flagged = Lint.Driver.with_freshness report ~drift in
  let to_show =
    if !show_all then flagged else List.filter (fun (_, fresh) -> fresh) flagged
  in
  (* with --json/--sarif on '-' a JSON record owns stdout; human output
     moves to stderr *)
  let hout = if !json_path = "-" || !sarif_path = "-" then stderr else stdout in
  if to_show <> [] then
    output_string hout (Report.Table.to_string (Lint.Driver.findings_table to_show));
  List.iter
    (fun (rule, file, allowed, actual) ->
      Printf.fprintf hout
        "stale baseline: %s allows %d x %s but only %d remain — drop the dead \
         allowance with --prune-baseline\n"
        file allowed rule actual)
    drift.Lint.Baseline.stale;
  Printf.fprintf hout "%s\n" (Lint.Driver.summary report ~drift);
  flush hout;
  if !json_path <> "" then
    Obs.Export.write_json ~path:!json_path
      (Lint.Driver.json_report ~root:!root report ~drift);
  if !sarif_path <> "" then
    Obs.Export.write_json ~path:!sarif_path
      (Lint.Sarif.report ~root:!root ~results:flagged);
  exit (if Lint.Baseline.clean drift then 0 else 1)
