(* sublint: the repo's own static-analysis gate.

   Parses every .ml/.mli under the requested directories with the
   compiler's parser, runs the Lint.Rules set, compares against the
   committed lint.baseline ratchet and exits non-zero on any fresh
   violation, stale baseline entry or unparseable file. *)

let usage =
  "sublint [options] [dir ...]\n\
   Static-analysis pass enforcing the solver-layer invariants (DESIGN §10).\n\
   Scans lib/ bin/ bench/ by default; exits 1 on findings beyond the\n\
   committed baseline, on stale baseline entries, and on parse errors."

let () =
  let root = ref "." in
  let baseline_path = ref "lint.baseline" in
  let json_path = ref "" in
  let update = ref false in
  let show_all = ref false in
  let dirs = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root to scan from (default .)");
      ( "--baseline",
        Arg.Set_string baseline_path,
        "PATH baseline file, relative to the cwd (default lint.baseline)" );
      ( "--json",
        Arg.Set_string json_path,
        "PATH write the lint.v1 JSON record here ('-' for stdout)" );
      ( "--update-baseline",
        Arg.Set update,
        " regenerate the baseline from the current findings and exit 0" );
      ("--all", Arg.Set show_all, " print baselined findings too, not just new ones");
    ]
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  let dirs =
    match List.rev !dirs with [] -> [ "lib"; "bin"; "bench" ] | ds -> ds
  in
  let report = Lint.Driver.scan ~root:!root ~dirs in
  let baseline =
    if !update then Lint.Baseline.empty
    else
      match Lint.Baseline.load ~path:!baseline_path with
      | b -> b
      | exception Lint.Baseline.Malformed msg ->
        Printf.eprintf "sublint: malformed baseline %s: %s\n" !baseline_path msg;
        exit 2
  in
  let drift = Lint.Baseline.diff ~baseline report.Lint.Driver.findings in
  if !update then begin
    Lint.Baseline.save ~path:!baseline_path
      (Lint.Baseline.of_findings report.Lint.Driver.findings);
    Printf.printf "%s\nsublint: wrote %d allowances to %s\n"
      (Lint.Driver.summary report ~drift)
      (List.length report.Lint.Driver.findings)
      !baseline_path;
    List.iter
      (fun (file, msg) -> Printf.eprintf "sublint: cannot parse %s: %s\n" file msg)
      report.Lint.Driver.parse_errors;
    exit (if report.Lint.Driver.parse_errors = [] then 0 else 1)
  end;
  let flagged = Lint.Driver.with_freshness report ~drift in
  let to_show =
    if !show_all then flagged else List.filter (fun (_, fresh) -> fresh) flagged
  in
  (* with --json - the JSON record owns stdout; human output moves to stderr *)
  let hout = if !json_path = "-" then stderr else stdout in
  if to_show <> [] then
    output_string hout (Report.Table.to_string (Lint.Driver.findings_table to_show));
  List.iter
    (fun (rule, file, allowed, actual) ->
      Printf.fprintf hout
        "stale baseline: %s allows %d x %s but only %d remain — regenerate with \
         --update-baseline\n"
        file allowed rule actual)
    drift.Lint.Baseline.stale;
  List.iter
    (fun (file, msg) -> Printf.eprintf "sublint: cannot parse %s: %s\n" file msg)
    report.Lint.Driver.parse_errors;
  Printf.fprintf hout "%s\n" (Lint.Driver.summary report ~drift);
  flush hout;
  if !json_path <> "" then
    Obs.Export.write_json ~path:!json_path
      (Lint.Driver.json_report ~root:!root report ~drift);
  let failed =
    (not (Lint.Baseline.clean drift)) || report.Lint.Driver.parse_errors <> []
  in
  exit (if failed then 1 else 0)
