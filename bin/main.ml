(* Command-line interface: regenerate any of the paper's figures, run
   the theorem-verification suite, explore custom market points, or
   drive the supervised runner (deadlines, retries, crash-safe
   manifests, chaos sweeps). *)

open Cmdliner

let dir_arg =
  let doc = "Directory for CSV output (one subdirectory per experiment)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"DIR" ~doc)

let plots_arg =
  let doc = "Render ASCII plots alongside the tables." in
  Arg.(value & flag & info [ "plots" ] ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON trace of the run to $(docv) (load it in \
     chrome://tracing or Perfetto); '-' prints the JSON as the final stdout line. \
     Tracing is enabled only when this flag is present."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Export the metrics registry (solver counters, latency histograms, experiment \
     timings) as JSON to $(docv); '-' prints the JSON as the final stdout line."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Domains used for grid-parallel experiment evaluation. Defaults to the \
     $(b,SUBSIDIZATION_JOBS) environment variable, then to the machine's \
     recommended domain count. Results are bit-identical at every value; only \
     the wall clock changes."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let apply_jobs = function Some n -> Parallel.Runtime.set_jobs n | None -> ()

(* -- logging options ------------------------------------------------ *)

let log_level_arg =
  let levels =
    [
      ("debug", Obs.Log.Debug);
      ("info", Obs.Log.Info);
      ("warn", Obs.Log.Warn);
      ("error", Obs.Log.Error);
    ]
  in
  let doc = "Structured-log threshold: one of debug, info, warn, error." in
  Arg.(value & opt (enum levels) Obs.Log.Info & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let log_json_arg =
  let doc = "Emit logs as JSONL (one compact JSON object per line) on stderr." in
  Arg.(value & flag & info [ "log-json" ] ~doc)

let apply_logging ~level ~json =
  Obs.Log.set_level level;
  if json then Obs.Log.set_sink (Obs.Log.Jsonl stderr)

let log_error_exit2 ~m msg =
  Obs.Log.error ~m msg;
  2

(* -- supervision options ------------------------------------------- *)

let deadline_arg =
  let doc =
    "Wall-clock deadline per experiment, in seconds: the cooperative watchdog \
     aborts any experiment that exceeds it and records a timed_out manifest entry."
  in
  Arg.(value & opt (some float) None & info [ "deadline-s" ] ~docv:"S" ~doc)

let max_evals_arg =
  let doc =
    "Objective-evaluation budget per experiment; exceeding it records an \
     out_of_budget manifest entry."
  in
  Arg.(value & opt (some int) None & info [ "max-evals" ] ~docv:"N" ~doc)

let retries_arg =
  let doc =
    "Retry an experiment up to $(docv) extra times on retryable (typed solver) \
     failures, with exponential backoff."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let backoff_arg =
  let doc = "Backoff before the first retry, in seconds (doubles per retry)." in
  Arg.(value & opt float 0.5 & info [ "backoff-s" ] ~docv:"S" ~doc)

let manifest_arg =
  let doc =
    "Persist a run.v1 manifest to $(docv), rewritten atomically after every \
     experiment; a crash mid-sweep leaves a loadable record of the prefix that ran."
  in
  Arg.(value & opt (some string) None & info [ "manifest" ] ~docv:"FILE" ~doc)

let resume_arg =
  let doc =
    "Load the --manifest file first and skip experiments already recorded \
     successful (completed with every shape check passing)."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let inject_crash_arg =
  let doc =
    "Append a deliberately crashing synthetic experiment to the sweep (supervision \
     self-test: the sweep must finish, record the failure, and exit non-zero)."
  in
  Arg.(value & flag & info [ "inject-crash" ] ~doc)

let limits_of ~deadline_s ~max_evals =
  match (deadline_s, max_evals) with
  | None, None -> Runner.Watchdog.no_limits
  | _ -> Runner.Watchdog.limits ?deadline_s ?max_evals ()

let retry_of ~retries ~backoff_s =
  Runner.Supervisor.retry ~max_attempts:(retries + 1) ~backoff_s ()

let print_solver_telemetry () =
  Printf.printf "\n-- solver telemetry --\n%s\n" (Numerics.Robust.stats_summary ());
  Printf.printf "derivatives: %.0f AD passes, %.0f FD stencils\n"
    (Numerics.Ad.stats ()).Numerics.Ad.passes
    (Numerics.Diff.stats ()).Numerics.Diff.estimates;
  Printf.printf "%s\n" (Numerics.Continuation.stats_summary ());
  let per_layer = Obs.Export.telemetry_table () in
  if Report.Table.row_count per_layer > 0 then
    Printf.printf "\n%s\n" (Report.Table.to_string per_layer)

(* run [f] with tracing switched on when requested, then write the
   requested exports; '-' targets deliberately come last on stdout so
   `... --metrics - | tail -n 1` is parseable JSON *)
let with_observability ~trace ~metrics f =
  (match trace with
  | Some _ ->
    Obs.Trace.clear ();
    Obs.Trace.set_enabled true
  | None -> ());
  let code = f () in
  (match trace with
  | Some path ->
    Obs.Trace.set_enabled false;
    Obs.Export.write_json ~path (Obs.Export.trace_json ());
    if path <> "-" then
      Printf.printf "trace (%d spans) written to %s\n" (List.length (Obs.Trace.spans ())) path
  | None -> ());
  (match metrics with
  | Some path ->
    Obs.Export.write_json ~path (Obs.Export.metrics_json ());
    if path <> "-" then Printf.printf "metrics written to %s\n" path
  | None -> ());
  code

let run_experiment id dir plots trace metrics jobs deadline_s max_evals retries backoff_s =
  apply_jobs jobs;
  with_observability ~trace ~metrics @@ fun () ->
  let experiment = Experiments.Registry.find_exn id in
  let limits = limits_of ~deadline_s ~max_evals in
  let retry = retry_of ~retries ~backoff_s in
  let { Runner.Supervisor.entry; outcome } =
    Runner.Supervisor.supervise ~limits ~retry experiment
  in
  (match outcome with
  | Some outcome ->
    Experiments.Common.print ~plots ~out:stdout outcome;
    print_solver_telemetry ();
    (match dir with
    | Some dir ->
      Experiments.Common.save outcome ~dir;
      Printf.printf "\nCSV written under %s/%s/\n" dir id
    | None -> ())
  | None ->
    Printf.printf "%s: %s (%s)\n" id
      (Runner.Manifest.status_to_string entry.Runner.Manifest.status)
      entry.Runner.Manifest.exit_reason;
    (match entry.Runner.Manifest.status with
    | Runner.Manifest.Failed { backtrace; _ } when backtrace <> "" ->
      Printf.printf "%s\n" backtrace
    | _ -> ()));
  if Runner.Manifest.successful entry then 0 else 1

let experiment_cmd (e : Experiments.Common.t) =
  let doc = Printf.sprintf "Reproduce %s (%s)." e.Experiments.Common.title e.Experiments.Common.paper_ref in
  let term =
    Term.(
      const (fun dir plots trace metrics jobs deadline_s max_evals retries backoff_s ->
          run_experiment e.Experiments.Common.id dir plots trace metrics jobs
            deadline_s max_evals retries backoff_s)
      $ dir_arg $ plots_arg $ trace_arg $ metrics_arg $ jobs_arg $ deadline_arg
      $ max_evals_arg $ retries_arg $ backoff_arg)
  in
  Cmd.v (Cmd.info e.Experiments.Common.id ~doc) term

(* ------------------------------------------------------------------ *)
(* all: the supervised sweep *)

let crashing_experiment =
  {
    Experiments.Common.id = "crashme";
    title = "deliberately crashing experiment (--inject-crash)";
    paper_ref = "supervision self-test";
    run = (fun () -> failwith "injected crash (--inject-crash)");
  }

let print_sweep_event dir = function
  | Runner.Supervisor.Started _ -> ()
  | Runner.Supervisor.Skipped { id } ->
    Printf.printf "%s: skipped (recorded successful in manifest)\n%!" id
  | Runner.Supervisor.Retrying { id; next_attempt; backoff_s; reason } ->
    Printf.printf "%s: retrying (attempt %d) after %.2fs backoff: %s\n%!" id
      next_attempt backoff_s reason
  | Runner.Supervisor.Finished { entry; outcome } -> (
    match outcome with
    | Some outcome ->
      print_endline (Experiments.Common.shape_summary outcome);
      (* Common.run resets solver telemetry per experiment, so the
         line printed after each figure is that figure's own count,
         not the running total across the whole `all` sweep *)
      Printf.printf "  telemetry: %s\n%!" (Numerics.Robust.stats_summary ());
      (match dir with Some dir -> Experiments.Common.save outcome ~dir | None -> ())
    | None ->
      Printf.printf "%s: %s (%s)\n%!" entry.Runner.Manifest.id
        (Runner.Manifest.status_to_string entry.Runner.Manifest.status)
        entry.Runner.Manifest.exit_reason)

let all_cmd =
  let doc =
    "Run every experiment under the supervised lifecycle: one-line summary per \
     figure, crash containment, optional deadlines/retries, and a crash-safe \
     resumable manifest."
  in
  let run dir trace metrics jobs deadline_s max_evals retries backoff_s manifest
      resume inject_crash =
    apply_jobs jobs;
    with_observability ~trace ~metrics @@ fun () ->
    if resume && manifest = None then
      log_error_exit2 ~m:"cli" "--resume requires --manifest FILE"
    else begin
      let experiments =
        Experiments.Registry.all @ (if inject_crash then [ crashing_experiment ] else [])
      in
      let limits = limits_of ~deadline_s ~max_evals in
      let retry = retry_of ~retries ~backoff_s in
      match
        Runner.Supervisor.sweep ~limits ~retry ?manifest_path:manifest ~resume
          ~on_event:(print_sweep_event dir) experiments
      with
      | Error msg -> log_error_exit2 ~m:"cli" ("cannot load manifest: " ^ msg)
      | Ok { Runner.Supervisor.manifest = m; ran; skipped; failed } ->
        Printf.printf "\n-- run manifest (%d ran, %d skipped, %d failed) --\n%s\n" ran
          skipped failed
          (Report.Table.to_string (Runner.Manifest.summary_table m));
        (match manifest with
        | Some path -> Printf.printf "manifest written to %s\n" path
        | None -> ());
        if failed = 0 then 0 else 1
    end
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      const run $ dir_arg $ trace_arg $ metrics_arg $ jobs_arg $ deadline_arg
      $ max_evals_arg $ retries_arg $ backoff_arg $ manifest_arg $ resume_arg
      $ inject_crash_arg)

(* ------------------------------------------------------------------ *)
(* chaos: fault modes x registry *)

let modes_arg =
  let doc =
    "Comma-separated fault scenarios to sweep (subset of nan-region, nan-after, \
     spike, budget, plateau); default all."
  in
  Arg.(value & opt (some string) None & info [ "modes" ] ~docv:"LIST" ~doc)

let only_arg =
  let doc = "Comma-separated experiment ids to include; default the full registry." in
  Arg.(value & opt (some string) None & info [ "only" ] ~docv:"LIST" ~doc)

let chaos_deadline_arg =
  let doc = "Wall-clock deadline per (scenario, experiment) pair, in seconds." in
  Arg.(value & opt float 20. & info [ "deadline-s" ] ~docv:"S" ~doc)

let split_csv s = String.split_on_char ',' s |> List.map String.trim

let chaos_cmd =
  let doc =
    "Sweep Numerics.Fault modes across the experiment registry, asserting every \
     experiment completes or degrades gracefully: no hang, no escaped exception, \
     and a schema-valid run.v1 manifest entry per (scenario, experiment) pair."
  in
  let run deadline_s modes only manifest jobs =
    apply_jobs jobs;
    let scenarios =
      match modes with
      | None -> Runner.Chaos.default_scenarios
      | Some list ->
        let wanted = split_csv list in
        let known = Runner.Chaos.default_scenarios in
        List.map
          (fun name ->
            match List.find_opt (fun s -> s.Runner.Chaos.name = name) known with
            | Some s -> s
            | None ->
              invalid_arg
                (Printf.sprintf "unknown chaos mode %S (known: %s)" name
                   (String.concat ", "
                      (List.map (fun s -> s.Runner.Chaos.name) known))))
          wanted
    in
    let experiments =
      match only with
      | None -> Experiments.Registry.all
      | Some list -> List.map Experiments.Registry.find_exn (split_csv list)
    in
    let limits = Runner.Watchdog.limits ~deadline_s () in
    let report =
      Runner.Chaos.run ~limits ~scenarios ~experiments ?manifest_path:manifest
        ~on_event:(fun event ->
          match event with
          | Runner.Supervisor.Started { id; _ } -> Printf.printf "chaos: %s...\n%!" id
          | _ -> ())
        ()
    in
    Printf.printf "\n%s\n" (Report.Table.to_string (Runner.Chaos.verdict_table report));
    let n = List.length report.Runner.Chaos.verdicts in
    if report.Runner.Chaos.ok then begin
      Printf.printf "chaos: all %d (scenario, experiment) pairs contained\n" n;
      0
    end
    else begin
      Printf.printf "chaos: CONTAINMENT BREACH in %d of %d pairs\n"
        (List.length
           (List.filter (fun v -> not v.Runner.Chaos.contained) report.Runner.Chaos.verdicts))
        n;
      1
    end
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ chaos_deadline_arg $ modes_arg $ only_arg $ manifest_arg
      $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* custom markets from CSV *)

let market_arg =
  let doc =
    "CSV file defining the CP population (columns: name,alpha,beta,value[,m0,l0]); \
     defaults to the paper's 8-CP market."
  in
  Arg.(value & opt (some file) None & info [ "market" ] ~docv:"FILE" ~doc)

(* [Ok cps] or [Error message]; a malformed market file is an operator
   input error, reported on stderr with exit code 2 *)
let cps_of ?market () =
  match market with
  | None -> Ok (Subsidization.Scenario.fig7_11_cps ())
  | Some path ->
    Result.map_error Experiments.Market_io.error_to_string
      (Experiments.Market_io.cps_of_csv path)

let with_market ?market f =
  match cps_of ?market () with
  | Error msg -> log_error_exit2 ~m:"cli" ("bad --market file: " ^ msg)
  | Ok cps -> f cps

(* ------------------------------------------------------------------ *)
(* nash: solve one market point *)

let price_arg =
  Arg.(value & opt float 0.8 & info [ "p"; "price" ] ~docv:"PRICE" ~doc:"ISP usage price.")

let cap_arg =
  Arg.(value & opt float 1.0 & info [ "q"; "cap" ] ~docv:"CAP" ~doc:"Subsidy cap (policy).")

let capacity_arg =
  Arg.(value & opt float 1.0 & info [ "mu"; "capacity" ] ~docv:"MU" ~doc:"ISP capacity.")

let nash_cmd =
  let doc =
    "Solve the subsidization game on the paper's 8-CP population at one (price, cap) point."
  in
  let run price cap capacity market trace metrics =
    with_observability ~trace ~metrics @@ fun () ->
    with_market ?market @@ fun cps ->
    Numerics.Robust.reset_stats ();
    let sys = Subsidization.System.make ~cps ~capacity () in
    let game = Subsidization.Subsidy_game.make sys ~price ~cap in
    let eq = Subsidization.Nash.solve game in
    let table =
      Report.Table.make ~columns:[ "cp"; "subsidy"; "charge"; "population"; "throughput"; "utility" ]
    in
    Array.iteri
      (fun i cp ->
        Report.Table.add_row table
          [
            cp.Econ.Cp.name;
            Printf.sprintf "%.4f" eq.Subsidization.Nash.subsidies.(i);
            Printf.sprintf "%.4f" eq.Subsidization.Nash.state.Subsidization.System.charges.(i);
            Printf.sprintf "%.4f" eq.Subsidization.Nash.state.Subsidization.System.populations.(i);
            Printf.sprintf "%.4f" eq.Subsidization.Nash.state.Subsidization.System.throughputs.(i);
            Printf.sprintf "%.4f" eq.Subsidization.Nash.utilities.(i);
          ])
      sys.Subsidization.System.cps;
    print_endline (Report.Table.to_string table);
    Printf.printf
      "\nphi=%.4f  aggregate theta=%.4f  ISP revenue=%.4f  welfare=%.4f\n\
       converged=%b in %d sweeps, KKT residual=%.2e\n"
      eq.Subsidization.Nash.state.Subsidization.System.phi
      eq.Subsidization.Nash.state.Subsidization.System.aggregate
      (price *. eq.Subsidization.Nash.state.Subsidization.System.aggregate)
      (Subsidization.Welfare.of_equilibrium game eq)
      eq.Subsidization.Nash.converged eq.Subsidization.Nash.sweeps
      eq.Subsidization.Nash.kkt_residual;
    print_solver_telemetry ();
    if eq.Subsidization.Nash.converged then 0 else 1
  in
  Cmd.v (Cmd.info "nash" ~doc)
    Term.(
      const run $ price_arg $ cap_arg $ capacity_arg $ market_arg $ trace_arg
      $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* sweep: optimal ISP price per policy level *)

let sweep_cmd =
  let doc = "Sweep policy levels; report the ISP's optimal price and the market outcome." in
  let run capacity market =
    with_market ?market @@ fun cps ->
    let sys = Subsidization.System.make ~cps ~capacity () in
    let table = Report.Table.make ~columns:[ "q"; "p*"; "revenue"; "welfare"; "phi" ] in
    Array.iter
      (fun cap ->
        let point = Subsidization.Policy.optimal_price ~p_max:2.5 sys ~cap in
        Report.Table.add_floats table
          [
            cap;
            point.Subsidization.Policy.price;
            point.Subsidization.Policy.revenue;
            point.Subsidization.Policy.welfare;
            point.Subsidization.Policy.utilization;
          ])
      (Subsidization.Scenario.q_levels ());
    print_endline (Report.Table.to_string table);
    0
  in
  Cmd.v (Cmd.info "sweep" ~doc) Term.(const run $ capacity_arg $ market_arg)

(* ------------------------------------------------------------------ *)
(* serve / loadgen: equilibrium-as-a-service *)

let socket_arg =
  let doc = "Unix-domain socket path for the solve daemon." in
  Arg.(
    value
    & opt string "/tmp/subsidization.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp_arg =
  let doc = "Listen on (or connect to) TCP port $(docv) instead of the Unix socket." in
  Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)

let host_arg =
  let doc = "Numeric host address for --tcp (default loopback)." in
  Arg.(value & opt string "" & info [ "host" ] ~docv:"ADDR" ~doc)

let address_of ~socket ~tcp ~host =
  match tcp with
  | Some port -> Service.Server.Tcp { host; port }
  | None -> Service.Server.Unix_path socket

let seed_arg =
  let doc = "Seed for the daemon's (or load generator's) deterministic Rng streams." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc)

let serve_cmd =
  let queue_arg =
    let doc = "Admission-queue bound; requests beyond it are shed with a typed answer." in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let cache_arg =
    let doc = "Equilibrium-cache entries (LRU-bounded)." in
    Arg.(value & opt int 256 & info [ "cache" ] ~docv:"N" ~doc)
  in
  let journal_arg =
    let doc =
      "Append a crash-safe request journal to $(docv); on restart, un-acked \
       requests are re-solved and acked requests are never answered twice."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let durable_arg =
    let doc = "fsync every journal append (power-loss durability; slower)." in
    Arg.(value & flag & info [ "durable" ] ~doc)
  in
  let snapshot_arg =
    let doc =
      "Persist the equilibrium cache to $(docv): loaded before journal replay \
       at startup, saved periodically and on clean shutdown, so a restarted \
       daemon answers repeated fingerprints from cache instead of re-solving."
    in
    Arg.(value & opt (some string) None & info [ "snapshot" ] ~docv:"FILE" ~doc)
  in
  let snapshot_every_arg =
    let doc = "Seconds between periodic cache-snapshot saves (0 disables the timer)." in
    Arg.(value & opt float 30. & info [ "snapshot-every-s" ] ~docv:"S" ~doc)
  in
  let compact_bytes_arg =
    let doc =
      "Rewrite the journal (dropping acked and torn lines) whenever it grows \
       past $(docv) bytes; 0 disables compaction."
    in
    Arg.(value & opt int (1 lsl 20) & info [ "compact-bytes" ] ~docv:"BYTES" ~doc)
  in
  let allow_chaos_arg =
    let doc =
      "Accept chaos frames that install fault injection process-wide (soak \
       testing only)."
    in
    Arg.(value & flag & info [ "allow-chaos" ] ~doc)
  in
  let verbose_arg =
    let doc = "Log per-batch and per-connection events (same as --log-level debug)." in
    Arg.(value & flag & info [ "verbose" ] ~doc)
  in
  let doc =
    "Run the solve daemon: Market_io JSON requests over a socket, admission \
     control, equilibrium caching with warm starts, watchdog limits and a \
     crash-safe request journal."
  in
  let run socket tcp host queue cache journal durable snapshot snapshot_every
      compact_bytes allow_chaos verbose log_level log_json jobs deadline_s
      max_evals retries backoff_s seed =
    apply_jobs jobs;
    apply_logging
      ~level:(if verbose then Obs.Log.Debug else log_level)
      ~json:log_json;
    let address = address_of ~socket ~tcp ~host in
    let base = Service.Server.default_config ~address in
    let limits =
      match (deadline_s, max_evals) with
      | None, None -> base.Service.Server.limits
      | _ -> Runner.Watchdog.limits ?deadline_s ?max_evals ()
    in
    let retry =
      Runner.Supervisor.retry ~max_attempts:(retries + 1) ~backoff_s ~jitter:0.5 ()
    in
    let cfg =
      {
        base with
        Service.Server.queue_capacity = queue;
        cache_capacity = cache;
        journal_path = journal;
        durable;
        snapshot_path = snapshot;
        snapshot_every_s = (if snapshot_every > 0. then Some snapshot_every else None);
        journal_compact_bytes = (if compact_bytes > 0 then Some compact_bytes else None);
        allow_chaos;
        limits;
        retry;
        seed = Int64.of_int seed;
      }
    in
    (* lifecycle, recovery and warning events reach stderr via the
       server's own Obs.Log routing; no stdout mirror needed *)
    match Service.Server.run cfg with
    | Ok () ->
      Obs.Log.info ~m:"serve" "drained cleanly";
      0
    | Error msg -> log_error_exit2 ~m:"serve" msg
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ tcp_arg $ host_arg $ queue_arg $ cache_arg
      $ journal_arg $ durable_arg $ snapshot_arg $ snapshot_every_arg
      $ compact_bytes_arg $ allow_chaos_arg $ verbose_arg $ log_level_arg
      $ log_json_arg $ jobs_arg $ deadline_arg $ max_evals_arg $ retries_arg
      $ backoff_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* serve-fleet: N sharded daemons under one supervisor process *)

let serve_fleet_cmd =
  let shards_arg =
    let doc = "Number of shard daemons to fork." in
    Arg.(value & opt int 3 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let dir_arg =
    let doc =
      "Fleet state directory: per-shard Unix sockets, journals and cache \
       snapshots live here, plus the fleet manifest."
    in
    Arg.(
      value
      & opt string "/tmp/subsidization-fleet"
      & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let manifest_out_arg =
    let doc =
      "Write the fleet.v1 manifest (shard names and addresses, the file \
       $(b,loadgen --fleet) consumes) to $(docv); default $(b,DIR/fleet.json)."
    in
    Arg.(value & opt (some string) None & info [ "fleet-manifest" ] ~docv:"FILE" ~doc)
  in
  let restart_arg =
    let doc =
      "Fork a replacement when a shard exits unexpectedly; journal replay plus \
       the cache snapshot make the replacement pick up where the casualty left \
       off."
    in
    Arg.(value & flag & info [ "restart" ] ~doc)
  in
  let queue_arg =
    let doc = "Per-shard admission-queue bound." in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let cache_arg =
    let doc = "Per-shard equilibrium-cache entries (LRU-bounded)." in
    Arg.(value & opt int 256 & info [ "cache" ] ~docv:"N" ~doc)
  in
  let durable_arg =
    let doc = "fsync every journal append on every shard." in
    Arg.(value & flag & info [ "durable" ] ~doc)
  in
  let doc =
    "Fork N solve-daemon shards (consistent-hash fleet): one Unix socket, \
     crash-safe journal and cache snapshot per shard under --dir, a fleet.v1 \
     manifest for fleet-aware clients, SIGTERM/SIGINT forwarded to every \
     shard, optional automatic restart of casualties."
  in
  let shard_name i = Printf.sprintf "s%d" i in
  let run shards dir manifest_out restart queue cache durable log_level
      log_json jobs deadline_s max_evals retries backoff_s seed =
    apply_logging ~level:log_level ~json:log_json;
    if shards < 1 then log_error_exit2 ~m:"fleet" "--shards must be at least 1"
    else begin
      match Report.Fsio.mkdir_p dir with
      | Error msg -> log_error_exit2 ~m:"fleet" ("cannot create --dir: " ^ msg)
      | Ok () ->
        let address i =
          Service.Server.Unix_path (Filename.concat dir (shard_name i ^ ".sock"))
        in
        let child_config i =
          let base = Service.Server.default_config ~address:(address i) in
          let limits =
            match (deadline_s, max_evals) with
            | None, None -> base.Service.Server.limits
            | _ -> Runner.Watchdog.limits ?deadline_s ?max_evals ()
          in
          {
            base with
            Service.Server.queue_capacity = queue;
            cache_capacity = cache;
            journal_path = Some (Filename.concat dir (shard_name i ^ ".journal"));
            snapshot_path = Some (Filename.concat dir (shard_name i ^ ".snapshot"));
            durable;
            limits;
            retry =
              Runner.Supervisor.retry ~max_attempts:(retries + 1) ~backoff_s
                ~jitter:0.5 ();
            seed = Int64.of_int (seed + (1000 * i));
          }
        in
        (* fork before any domain pool exists; each child sizes its own *)
        let spawn i =
          match Unix.fork () with
          | 0 ->
            apply_jobs jobs;
            let code =
              match Service.Server.run (child_config i) with
              | Ok () -> 0
              | Error msg ->
                Obs.Log.error ~m:"fleet"
                  (Printf.sprintf "%s: %s" (shard_name i) msg);
                1
            in
            Stdlib.exit code
          | pid -> pid
        in
        let pids = Array.init shards spawn in
        let ring_shards =
          List.init shards (fun i ->
              {
                Service.Shard.name = shard_name i;
                address = address i;
                health = Service.Shard.Up;
                failures = 0;
              })
        in
        let manifest_path =
          match manifest_out with
          | Some p -> p
          | None -> Filename.concat dir "fleet.json"
        in
        (match Service.Shard.make ring_shards with
        | Error msg -> log_error_exit2 ~m:"fleet" msg
        | Ok ring ->
          (match Service.Shard.save_manifest ~path:manifest_path ring with
          | Error msg ->
            log_error_exit2 ~m:"fleet" ("cannot write fleet manifest: " ^ msg)
          | Ok () ->
            Printf.printf "fleet: %d shards up, manifest %s\n%!" shards
              manifest_path;
            let stopping = ref false in
            let forward _ =
              stopping := true;
              Array.iter
                (fun pid ->
                  if pid > 0 then
                    try Unix.kill pid Sys.sigterm
                    with Unix.Unix_error (_, _, _) -> ())
                pids
            in
            let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle forward) in
            let old_int = Sys.signal Sys.sigint (Sys.Signal_handle forward) in
            let casualties = ref 0 in
            let live = ref shards in
            while !live > 0 do
              match Unix.waitpid [] (-1) with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | exception Unix.Unix_error (Unix.ECHILD, _, _) -> live := 0
              | exception Unix.Unix_error (_, _, _) -> live := 0
              | pid, status ->
                let i = ref (-1) in
                Array.iteri (fun k p -> if p = pid then i := k) pids;
                if !i >= 0 then begin
                  pids.(!i) <- 0;
                  decr live;
                  let clean =
                    match status with Unix.WEXITED 0 -> true | _ -> false
                  in
                  if (not !stopping) && not clean then begin
                    incr casualties;
                    Obs.Log.warn ~m:"fleet"
                      ~fields:[ ("shard", shard_name !i) ]
                      (if restart then "shard died; restarting"
                       else "shard died");
                    if restart then begin
                      pids.(!i) <- spawn !i;
                      incr live
                    end
                  end
                end
            done;
            Sys.set_signal Sys.sigterm old_term;
            Sys.set_signal Sys.sigint old_int;
            Printf.printf "fleet: drained (%d unexpected shard exits)\n"
              !casualties;
            if !stopping || !casualties = 0 || restart then 0 else 1))
    end
  in
  Cmd.v (Cmd.info "serve-fleet" ~doc)
    Term.(
      const run $ shards_arg $ dir_arg $ manifest_out_arg $ restart_arg
      $ queue_arg $ cache_arg $ durable_arg $ log_level_arg $ log_json_arg
      $ jobs_arg $ deadline_arg $ max_evals_arg $ retries_arg $ backoff_arg
      $ seed_arg)

(* numeric field lookup into an obs.metrics.v1 document:
   [metrics_num json field name] is NaN when absent *)
let metrics_num json =
  let series =
    match Obs.Json.member "series" json with
    | Some (Obs.Json.Arr items) -> items
    | _ -> []
  in
  let find name =
    List.find_opt
      (fun s ->
        match Obs.Json.member "name" s with
        | Some (Obs.Json.Str n) -> String.equal n name
        | _ -> false)
      series
  in
  fun field name ->
    match Option.bind (find name) (Obs.Json.member field) with
    | Some (Obs.Json.Num v) -> v
    | _ -> Float.nan

(* pull one histogram's p99 and the cache counters out of the
   obs.metrics.v1 document for the end-of-run summary line *)
let metrics_digest json =
  let num = metrics_num json in
  Printf.sprintf
    "p99 solve %.4fs (%d solves); cache: %.0f hits, %.0f misses, %.0f warm \
     seeds, %.0f evictions; shed %.0f"
    (num "p99" "service.solve.latency_s")
    (int_of_float
       (Float.max 0. (num "count" "service.solve.latency_s")))
    (num "value" "service.cache.hits")
    (num "value" "service.cache.misses")
    (num "value" "service.cache.warm_seeds")
    (num "value" "service.cache.evictions")
    (num "value" "service.queue.shed")

let loadgen_cmd =
  let requests_arg =
    let doc = "Solve requests to send." in
    Arg.(value & opt int 1000 & info [ "n"; "requests" ] ~docv:"N" ~doc)
  in
  let connections_arg =
    let doc = "Concurrent connections." in
    Arg.(value & opt int 2 & info [ "connections" ] ~docv:"N" ~doc)
  in
  let burst_arg =
    let doc = "Pipelined solve frames per connection per round." in
    Arg.(value & opt int 8 & info [ "burst" ] ~docv:"N" ~doc)
  in
  let chaos_every_arg =
    let doc =
      "Send a chaos-mode toggle every $(docv) requests, cycling through every \
       fault scenario and off (daemon must run with --allow-chaos)."
    in
    Arg.(value & opt (some int) None & info [ "chaos-every" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc = "Client-side timeout per response, in seconds." in
    Arg.(value & opt float 60. & info [ "timeout-s" ] ~docv:"S" ~doc)
  in
  let csv_arg =
    let doc =
      "Write the run report (counts, per-mode chaos toggles, latency \
       distribution) as CSV to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)
  in
  let fleet_arg =
    let doc =
      "Drive a sharded fleet instead of one daemon: route requests by \
       fingerprint over the fleet.v1 manifest $(docv) (written by \
       $(b,serve-fleet)), with retry, failover and per-shard circuit breakers."
    in
    Arg.(value & opt (some file) None & info [ "fleet" ] ~docv:"MANIFEST" ~doc)
  in
  let chaos_net_arg =
    let doc =
      "Inject deterministic client-side network faults (dropped connections, \
       torn mid-frame writes, delayed reads), seeded from --seed; the run \
       must still answer every request via the failover pool."
    in
    Arg.(value & flag & info [ "chaos-net" ] ~doc)
  in
  let doc =
    "Drive randomized solve load (fresh markets, cache-hitting repeats, \
     warm-start neighbours, optional chaos toggles) against a running daemon \
     and verify every request is answered."
  in
  let run socket tcp host requests connections burst seed chaos_every
      deadline_s timeout_s csv fleet chaos_net log_level log_json =
    apply_logging ~level:log_level ~json:log_json;
    let address = address_of ~socket ~tcp ~host in
    let fleet_ring =
      match fleet with
      | None -> Ok None
      | Some path ->
        Result.map Option.some (Service.Shard.load_manifest ~path ())
    in
    match fleet_ring with
    | Error msg -> log_error_exit2 ~m:"loadgen" msg
    | Ok ring ->
      let netfault =
        if chaos_net then
          Some
            (Service.Netfault.create ~drop_conn_p:0.02 ~torn_write_p:0.02
               ~delay_read_p:0.05 ~delay_s:0.005
               ~seed:(Int64.of_int (seed + 7919))
               ())
        else None
      in
      let base = Service.Loadgen.default_config ~address ~requests in
      let cfg =
        {
          base with
          Service.Loadgen.connections;
          burst;
          seed = Int64.of_int seed;
          chaos_every;
          deadline_s;
          timeout_s;
          fleet = ring;
          netfault;
        }
      in
      (match netfault with
      | Some nf ->
        Printf.printf "loadgen: chaos-net on (%s)\n%!"
          (Service.Netfault.describe nf)
      | None -> ());
      (match
         Service.Loadgen.run
           ~on_event:(fun m -> Printf.printf "loadgen: %s\n%!" m)
           cfg
       with
      | Error msg -> log_error_exit2 ~m:"loadgen" msg
      | Ok report ->
        Printf.printf "loadgen: %s\n" (Service.Loadgen.report_to_string report);
        List.iter
          (fun (name, (s : Service.Loadgen.shard_load)) ->
            Printf.printf
              "loadgen: shard %s: %d sent, %d answered (%d solved, %d \
               degraded, %d shed), %.1f req/s\n"
              name s.Service.Loadgen.sent s.Service.Loadgen.answered
              s.Service.Loadgen.solved s.Service.Loadgen.degraded
              s.Service.Loadgen.shed s.Service.Loadgen.req_s)
          report.Service.Loadgen.per_shard;
        (match netfault with
        | Some nf ->
          let s = Service.Netfault.stats nf in
          Printf.printf
            "loadgen: chaos-net injected %d dropped conns, %d torn writes, %d \
             delayed reads\n"
            s.Service.Netfault.dropped s.Service.Netfault.torn
            s.Service.Netfault.delayed
        | None -> ());
        (match csv with
        | Some path ->
          Service.Loadgen.write_csv ~path report;
          Printf.printf "loadgen: report CSV written to %s\n" path
        | None -> ());
        let digest_of addr tag =
          match Service.Loadgen.fetch_metrics ~prefix:"service." addr with
          | Ok json -> Printf.printf "loadgen: %s%s\n" tag (metrics_digest json)
          | Error msg ->
            Printf.printf "loadgen: %sno metrics snapshot (%s)\n" tag msg
        in
        (match ring with
        | None -> digest_of address ""
        | Some ring ->
          List.iter
            (fun (s : Service.Shard.shard) ->
              digest_of s.Service.Shard.address
                (Printf.sprintf "shard %s: " s.Service.Shard.name))
            (Service.Shard.shards ring));
        List.iter
          (fun e -> Printf.printf "loadgen: transport error: %s\n" e)
          report.Service.Loadgen.errors;
        if Service.Loadgen.report_ok report then begin
          Printf.printf "loadgen: OK — every request solved, degraded or shed\n";
          0
        end
        else begin
          Printf.printf "loadgen: FAILED\n";
          1
        end)
  in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(
      const run $ socket_arg $ tcp_arg $ host_arg $ requests_arg
      $ connections_arg $ burst_arg $ seed_arg $ chaos_every_arg $ deadline_arg
      $ timeout_arg $ csv_arg $ fleet_arg $ chaos_net_arg $ log_level_arg
      $ log_json_arg)

(* ------------------------------------------------------------------ *)
(* top: live daemon dashboard *)

let top_cmd =
  let interval_arg =
    let doc = "Seconds between polls." in
    Arg.(value & opt float 1.0 & info [ "interval-s" ] ~docv:"S" ~doc)
  in
  let iterations_arg =
    let doc = "Stop after $(docv) polls; 0 means run until interrupted." in
    Arg.(value & opt int 0 & info [ "iterations" ] ~docv:"N" ~doc)
  in
  let plain_arg =
    let doc = "Append frames instead of redrawing in place (no ANSI escapes)." in
    Arg.(value & flag & info [ "plain" ] ~doc)
  in
  let doc =
    "Live terminal dashboard for a running solve daemon: request rate, solve \
     latency quantiles, cache hit ratio, queue depth, shed/degraded counts \
     and journal lag, polled over the metrics frame."
  in
  let fmt_rate v = if Float.is_nan v then "-" else Printf.sprintf "%.1f" v in
  let fmt_ms v = if Float.is_nan v then "-" else Printf.sprintf "%.2f" (1000. *. v) in
  let fmt_count v = if Float.is_nan v then "-" else Printf.sprintf "%.0f" v in
  let run socket tcp host interval iterations plain log_level log_json =
    apply_logging ~level:log_level ~json:log_json;
    let address = address_of ~socket ~tcp ~host in
    let interval = Float.max 0.05 interval in
    let sampler = Obs.Series.create ~capacity:600 () in
    let prev_total = ref None in
    let render json =
      let num = metrics_num json in
      let now = Obs.Clock.now () in
      let solved = num "value" "service.requests.solved" in
      let degraded = num "value" "service.requests.degraded" in
      let shed = num "value" "service.requests.shed" in
      let answered v = if Float.is_nan v then 0. else v in
      let total = answered solved +. answered degraded +. answered shed in
      (match !prev_total with
      | Some (pt, ptotal) when now > pt ->
        Obs.Series.append sampler ~name:"req_s" ~t_s:now
          (Float.max 0. ((total -. ptotal) /. (now -. pt)))
      | _ -> ());
      prev_total := Some (now, total);
      let inst = Obs.Series.window ~last_s:(2. *. interval) sampler "req_s" in
      let avg = Obs.Series.window ~last_s:60. sampler "req_s" in
      let hits = num "value" "service.cache.hits" in
      let misses = num "value" "service.cache.misses" in
      let hit_ratio =
        if Float.is_nan hits || Float.is_nan misses || hits +. misses <= 0. then
          Float.nan
        else hits /. (hits +. misses)
      in
      let t = Report.Table.make ~columns:[ "metric"; "value" ] in
      let add k v = Report.Table.add_row t [ k; v ] in
      add "req/s"
        (match inst with Some w -> fmt_rate w.Obs.Series.last | None -> "-");
      add "req/s (60s mean)"
        (match avg with Some w -> fmt_rate w.Obs.Series.mean | None -> "-");
      add "solved" (fmt_count solved);
      add "degraded" (fmt_count degraded);
      add "shed" (fmt_count shed);
      add "rejected" (fmt_count (num "value" "service.requests.rejected"));
      add "solve p50 (ms)" (fmt_ms (num "p50" "service.solve.latency_s"));
      add "solve p99 (ms)" (fmt_ms (num "p99" "service.solve.latency_s"));
      add "cache hit ratio"
        (if Float.is_nan hit_ratio then "-"
         else Printf.sprintf "%.1f%%" (100. *. hit_ratio));
      add "cache size" (fmt_count (num "value" "service.cache.size"));
      add "warm seeds" (fmt_count (num "value" "service.cache.warm_seeds"));
      add "queue depth" (fmt_count (num "value" "service.queue.depth"));
      add "connections" (fmt_count (num "value" "service.connections"));
      add "journal pending" (fmt_count (num "value" "service.journal.pending"));
      add "journal bytes" (fmt_count (num "value" "service.journal.size_bytes"));
      add "snapshot age (s)"
        (let v = num "value" "service.cache.snapshot_age_s" in
         if Float.is_nan v then "-" else Printf.sprintf "%.0f" v);
      if not plain then print_string "\027[2J\027[H";
      Printf.printf "subsidization top — %s (every %.1fs)\n\n%s\n"
        (Service.Server.address_to_string address)
        interval
        (Report.Table.to_string t);
      let pts = Obs.Series.points sampler "req_s" in
      if List.length pts >= 2 then begin
        let xs = Array.of_list (List.map fst pts) in
        let t0 = xs.(0) in
        let xs = Array.map (fun x -> x -. t0) xs in
        let ys = Array.of_list (List.map snd pts) in
        let plot =
          Report.Ascii_plot.render
            ~config:
              {
                Report.Ascii_plot.default with
                Report.Ascii_plot.width = 56;
                height = 8;
                y_min = Some 0.;
              }
            [ Report.Series.make ~name:"req/s" ~xs ~ys ]
        in
        Printf.printf "\n%s\n" plot
      end;
      flush stdout
    in
    let rec poll i =
      match Service.Loadgen.fetch_metrics ~prefix:"service." address with
      | Error msg -> log_error_exit2 ~m:"top" ("metrics poll failed: " ^ msg)
      | Ok json ->
        render json;
        if iterations > 0 && i + 1 >= iterations then 0
        else begin
          Unix.sleepf interval;
          poll (i + 1)
        end
    in
    poll 0
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      const run $ socket_arg $ tcp_arg $ host_arg $ interval_arg
      $ iterations_arg $ plain_arg $ log_level_arg $ log_json_arg)

let main_cmd =
  let doc =
    "Reproduction of 'Subsidization Competition: Vitalizing the Neutral Internet' (CoNEXT 2014)"
  in
  let info = Cmd.info "subsidization" ~version:"1.0.0" ~doc in
  let experiment_cmds = List.map experiment_cmd Experiments.Registry.all in
  Cmd.group info
    (experiment_cmds
    @ [
        all_cmd;
        chaos_cmd;
        nash_cmd;
        sweep_cmd;
        serve_cmd;
        serve_fleet_cmd;
        loadgen_cmd;
        top_cmd;
      ])

let () = exit (Cmd.eval' main_cmd)
