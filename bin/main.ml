(* Command-line interface: regenerate any of the paper's figures, run
   the theorem-verification suite, or explore custom market points. *)

open Cmdliner

let dir_arg =
  let doc = "Directory for CSV output (one subdirectory per experiment)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"DIR" ~doc)

let plots_arg =
  let doc = "Render ASCII plots alongside the tables." in
  Arg.(value & flag & info [ "plots" ] ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON trace of the run to $(docv) (load it in \
     chrome://tracing or Perfetto); '-' prints the JSON as the final stdout line. \
     Tracing is enabled only when this flag is present."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Export the metrics registry (solver counters, latency histograms, experiment \
     timings) as JSON to $(docv); '-' prints the JSON as the final stdout line."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let print_solver_telemetry () =
  Printf.printf "\n-- solver telemetry --\n%s\n" (Numerics.Robust.stats_summary ());
  let per_layer = Obs.Export.telemetry_table () in
  if Report.Table.row_count per_layer > 0 then
    Printf.printf "\n%s\n" (Report.Table.to_string per_layer)

(* run [f] with tracing switched on when requested, then write the
   requested exports; '-' targets deliberately come last on stdout so
   `... --metrics - | tail -n 1` is parseable JSON *)
let with_observability ~trace ~metrics f =
  (match trace with
  | Some _ ->
    Obs.Trace.clear ();
    Obs.Trace.set_enabled true
  | None -> ());
  let code = f () in
  (match trace with
  | Some path ->
    Obs.Trace.set_enabled false;
    Obs.Export.write_json ~path (Obs.Export.trace_json ());
    if path <> "-" then
      Printf.printf "trace (%d spans) written to %s\n" (List.length (Obs.Trace.spans ())) path
  | None -> ());
  (match metrics with
  | Some path ->
    Obs.Export.write_json ~path (Obs.Export.metrics_json ());
    if path <> "-" then Printf.printf "metrics written to %s\n" path
  | None -> ());
  code

let run_experiment id dir plots trace metrics =
  with_observability ~trace ~metrics @@ fun () ->
  let experiment = Experiments.Registry.find_exn id in
  let outcome = Experiments.Common.run experiment in
  Experiments.Common.print ~plots ~out:stdout outcome;
  print_solver_telemetry ();
  (match dir with
  | Some dir ->
    Experiments.Common.save outcome ~dir;
    Printf.printf "\nCSV written under %s/%s/\n" dir id
  | None -> ());
  if
    List.for_all
      (fun c -> c.Subsidization.Theorems.passed)
      outcome.Experiments.Common.shape_checks
  then 0
  else 1

let experiment_cmd (e : Experiments.Common.t) =
  let doc = Printf.sprintf "Reproduce %s (%s)." e.Experiments.Common.title e.Experiments.Common.paper_ref in
  let term =
    Term.(
      const (fun dir plots trace metrics ->
          run_experiment e.Experiments.Common.id dir plots trace metrics)
      $ dir_arg $ plots_arg $ trace_arg $ metrics_arg)
  in
  Cmd.v (Cmd.info e.Experiments.Common.id ~doc) term

let all_cmd =
  let doc = "Run every experiment and print a one-line summary per figure." in
  let run dir trace metrics =
    with_observability ~trace ~metrics @@ fun () ->
    let failures = ref 0 in
    List.iter
      (fun (e : Experiments.Common.t) ->
        (* Common.run resets solver telemetry per experiment, so the
           line printed after each figure is that figure's own count,
           not the running total across the whole `all` sweep *)
        let outcome = Experiments.Common.run e in
        print_endline (Experiments.Common.shape_summary outcome);
        Printf.printf "  telemetry: %s\n" (Numerics.Robust.stats_summary ());
        (match dir with Some dir -> Experiments.Common.save outcome ~dir | None -> ());
        if
          not
            (List.for_all
               (fun c -> c.Subsidization.Theorems.passed)
               outcome.Experiments.Common.shape_checks)
        then incr failures)
      Experiments.Registry.all;
    if !failures = 0 then 0 else 1
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ dir_arg $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* custom markets from CSV *)

let market_arg =
  let doc =
    "CSV file defining the CP population (columns: name,alpha,beta,value[,m0,l0]); \
     defaults to the paper's 8-CP market."
  in
  Arg.(value & opt (some file) None & info [ "market" ] ~docv:"FILE" ~doc)

let system_of ?market ~capacity () =
  let cps =
    match market with
    | Some path -> Experiments.Market_io.cps_of_csv path
    | None -> Subsidization.Scenario.fig7_11_cps ()
  in
  Subsidization.System.make ~cps ~capacity ()

(* ------------------------------------------------------------------ *)
(* nash: solve one market point *)

let price_arg =
  Arg.(value & opt float 0.8 & info [ "p"; "price" ] ~docv:"PRICE" ~doc:"ISP usage price.")

let cap_arg =
  Arg.(value & opt float 1.0 & info [ "q"; "cap" ] ~docv:"CAP" ~doc:"Subsidy cap (policy).")

let capacity_arg =
  Arg.(value & opt float 1.0 & info [ "mu"; "capacity" ] ~docv:"MU" ~doc:"ISP capacity.")

let nash_cmd =
  let doc =
    "Solve the subsidization game on the paper's 8-CP population at one (price, cap) point."
  in
  let run price cap capacity market trace metrics =
    with_observability ~trace ~metrics @@ fun () ->
    Numerics.Robust.reset_stats ();
    let sys = system_of ?market ~capacity () in
    let game = Subsidization.Subsidy_game.make sys ~price ~cap in
    let eq = Subsidization.Nash.solve game in
    let table =
      Report.Table.make ~columns:[ "cp"; "subsidy"; "charge"; "population"; "throughput"; "utility" ]
    in
    Array.iteri
      (fun i cp ->
        Report.Table.add_row table
          [
            cp.Econ.Cp.name;
            Printf.sprintf "%.4f" eq.Subsidization.Nash.subsidies.(i);
            Printf.sprintf "%.4f" eq.Subsidization.Nash.state.Subsidization.System.charges.(i);
            Printf.sprintf "%.4f" eq.Subsidization.Nash.state.Subsidization.System.populations.(i);
            Printf.sprintf "%.4f" eq.Subsidization.Nash.state.Subsidization.System.throughputs.(i);
            Printf.sprintf "%.4f" eq.Subsidization.Nash.utilities.(i);
          ])
      sys.Subsidization.System.cps;
    print_endline (Report.Table.to_string table);
    Printf.printf
      "\nphi=%.4f  aggregate theta=%.4f  ISP revenue=%.4f  welfare=%.4f\n\
       converged=%b in %d sweeps, KKT residual=%.2e\n"
      eq.Subsidization.Nash.state.Subsidization.System.phi
      eq.Subsidization.Nash.state.Subsidization.System.aggregate
      (price *. eq.Subsidization.Nash.state.Subsidization.System.aggregate)
      (Subsidization.Welfare.of_equilibrium game eq)
      eq.Subsidization.Nash.converged eq.Subsidization.Nash.sweeps
      eq.Subsidization.Nash.kkt_residual;
    print_solver_telemetry ();
    if eq.Subsidization.Nash.converged then 0 else 1
  in
  Cmd.v (Cmd.info "nash" ~doc)
    Term.(
      const run $ price_arg $ cap_arg $ capacity_arg $ market_arg $ trace_arg
      $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* sweep: optimal ISP price per policy level *)

let sweep_cmd =
  let doc = "Sweep policy levels; report the ISP's optimal price and the market outcome." in
  let run capacity market =
    let sys = system_of ?market ~capacity () in
    let table = Report.Table.make ~columns:[ "q"; "p*"; "revenue"; "welfare"; "phi" ] in
    Array.iter
      (fun cap ->
        let point = Subsidization.Policy.optimal_price ~p_max:2.5 sys ~cap in
        Report.Table.add_floats table
          [
            cap;
            point.Subsidization.Policy.price;
            point.Subsidization.Policy.revenue;
            point.Subsidization.Policy.welfare;
            point.Subsidization.Policy.utilization;
          ])
      (Subsidization.Scenario.q_levels ());
    print_endline (Report.Table.to_string table);
    0
  in
  Cmd.v (Cmd.info "sweep" ~doc) Term.(const run $ capacity_arg $ market_arg)

let main_cmd =
  let doc =
    "Reproduction of 'Subsidization Competition: Vitalizing the Neutral Internet' (CoNEXT 2014)"
  in
  let info = Cmd.info "subsidization" ~version:"1.0.0" ~doc in
  let experiment_cmds = List.map experiment_cmd Experiments.Registry.all in
  Cmd.group info (experiment_cmds @ [ all_cmd; nash_cmd; sweep_cmd ])

let () = exit (Cmd.eval' main_cmd)
