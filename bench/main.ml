(* Benchmark harness.

   Part 1 regenerates every table/figure of the paper (the same rows the
   evaluation section reports) and prints the shape-check verdicts.
   Part 2 times the computational kernels behind each figure with
   Bechamel: one Test.make per figure, plus micro-benchmarks of the
   solvers.

   With `--json FILE` the harness additionally emits a machine-readable
   perf record (schema bench.v1): per-figure regeneration wall time and
   solver work, plus the bechamel time/run estimates — the BENCH_*.json
   trajectory the ROADMAP asks for. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 1: figure regeneration *)

type figure_record = {
  fig_id : string;
  seconds : float;
  root_calls : int;
  fixed_point_calls : int;
  objective_evaluations : float;
}

let regenerate () =
  print_endline "==================================================================";
  print_endline " Figure regeneration: Ma, 'Subsidization Competition' (CoNEXT'14)";
  print_endline "==================================================================";
  let failures = ref 0 in
  let records = ref [] in
  List.iter
    (fun (e : Experiments.Common.t) ->
      let t0 = Obs.Clock.now () in
      (* Common.run resets solver telemetry, so the per-figure solver
         counts below describe this figure alone *)
      let outcome = Experiments.Common.run e in
      let seconds = Obs.Clock.elapsed ~since:t0 in
      Printf.printf "\n%s\n" (String.make 66 '-');
      Experiments.Common.print ~plots:false outcome;
      Printf.printf "[%s regenerated in %.2fs]\n" e.Experiments.Common.id seconds;
      let stats = Numerics.Robust.stats () in
      records :=
        {
          fig_id = e.Experiments.Common.id;
          seconds;
          root_calls = stats.Numerics.Robust.root_calls;
          fixed_point_calls = stats.Numerics.Robust.fixed_point_calls;
          objective_evaluations = Obs.Metrics.sum_histograms "solver.evaluations";
        }
        :: !records;
      if
        not
          (List.for_all
             (fun c -> c.Subsidization.Theorems.passed)
             outcome.Experiments.Common.shape_checks)
      then incr failures)
    Experiments.Registry.all;
  (!failures, List.rev !records)

(* ------------------------------------------------------------------ *)
(* Part 2: bechamel timings *)

let fig45_sys = Subsidization.Scenario.fig45_system ()
let fig7_11_sys = Subsidization.Scenario.fig7_11_system ()
let bench_prices = Subsidization.Scenario.price_grid ~points:9 ()

let bench_fig4 () =
  let prices = bench_prices in
  Subsidization.One_sided.revenue_curve fig45_sys ~prices

let bench_fig5 () =
  let prices = bench_prices in
  Array.map (fun p -> (Subsidization.One_sided.state fig45_sys ~price:p).Subsidization.System.throughputs) prices

let bench_fig7_row cap () =
  Subsidization.Policy.price_sweep fig7_11_sys ~cap ~prices:bench_prices

let equilibrium_game = Subsidization.Subsidy_game.make fig7_11_sys ~price:0.8 ~cap:1.0

let nash_equilibrium = Subsidization.Nash.solve equilibrium_game

let bench_verify () = Subsidization.Theorems.run_paper_suite ()

let bench_capacity () =
  Subsidization.Capacity.evaluate fig7_11_sys
    ~pricing:(Subsidization.Capacity.Fixed_price 0.8) ~cap:1.0 ~unit_cost:0.15
    ~capacity:2.

let tests =
  Test.make_grouped ~name:"subsidization"
    [
      (* one per figure *)
      Test.make ~name:"fig4:revenue-curve" (Staged.stage bench_fig4);
      Test.make ~name:"fig5:throughput-curves" (Staged.stage bench_fig5);
      Test.make ~name:"fig7:sweep-q0" (Staged.stage (bench_fig7_row 0.));
      Test.make ~name:"fig8-11:sweep-q1" (Staged.stage (bench_fig7_row 1.0));
      Test.make ~name:"fig8-11:sweep-q2" (Staged.stage (bench_fig7_row 2.0));
      Test.make ~name:"verify:theorem-suite" (Staged.stage bench_verify);
      Test.make ~name:"capacity:market-eval" (Staged.stage bench_capacity);
      (* solver kernels *)
      Test.make ~name:"kernel:utilization-equilibrium"
        (Staged.stage (fun () ->
             Subsidization.System.solve fig45_sys
               ~charges:(Numerics.Vec.make 9 0.5)));
      Test.make ~name:"kernel:nash-solve"
        (Staged.stage (fun () -> Subsidization.Nash.solve equilibrium_game));
      Test.make ~name:"kernel:sensitivity-ds-dq"
        (Staged.stage (fun () ->
             Subsidization.Sensitivity.ds_dq equilibrium_game
               ~subsidies:nash_equilibrium.Subsidization.Nash.subsidies));
      Test.make ~name:"kernel:marginal-revenue-formula"
        (Staged.stage (fun () ->
             Subsidization.Revenue.marginal_formula equilibrium_game
               ~subsidies:nash_equilibrium.Subsidization.Nash.subsidies));
      (* solver ablation: iterated best response vs the extragradient VI
         iteration on the same game *)
      Test.make ~name:"ablation:nash-best-response"
        (Staged.stage (fun () -> Subsidization.Nash.solve equilibrium_game));
      Test.make ~name:"ablation:nash-extragradient"
        (Staged.stage (fun () ->
             Subsidization.Nash.solve_vi ~tol:1e-8 equilibrium_game));
      Test.make ~name:"dynamics:gradient-flow-100steps"
        (Staged.stage (fun () ->
             Subsidization.Dynamics.gradient_flow ~horizon:25. ~dt:0.25
               equilibrium_game ~x0:(Numerics.Vec.zeros 8)));
      Test.make ~name:"longrun:10-period-path"
        (Staged.stage (fun () ->
             Subsidization.Longrun.simulate
               ~params:
                 { Subsidization.Longrun.default_params with Subsidization.Longrun.periods = 10 }
               fig7_11_sys ~price:0.8 ~cap:1.0));
      Test.make ~name:"duopoly:market-eval-q1"
        (Staged.stage
           (let duopoly =
              Subsidization.Duopoly.make
                ~cps:(Subsidization.Scenario.fig7_11_cps ())
                ~capacity_a:0.5 ~capacity_b:0.5 ~cap:1.0 ()
            in
            fun () -> Subsidization.Duopoly.market_at duopoly ~prices:(0.8, 0.8)));
    ]

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table = Report.Table.make ~columns:[ "benchmark"; "time/run"; "r^2" ] in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let records =
    List.map
      (fun (name, ols) ->
        let time_ns =
          match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> Float.nan
        in
        let r2 = Analyze.OLS.r_square ols in
        let pretty =
          if Float.is_nan time_ns then "n/a"
          else if time_ns > 1e9 then Printf.sprintf "%.2f s" (time_ns /. 1e9)
          else if time_ns > 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
          else if time_ns > 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
          else Printf.sprintf "%.0f ns" time_ns
        in
        Report.Table.add_row table
          [ name; pretty; (match r2 with Some r -> Printf.sprintf "%.4f" r | None -> "-") ];
        (name, time_ns, r2))
      rows
  in
  print_newline ();
  print_endline "==================================================================";
  print_endline " Bechamel timings (monotonic clock, OLS on run count)";
  print_endline "==================================================================";
  print_endline (Report.Table.to_string table);
  records

(* ------------------------------------------------------------------ *)
(* machine-readable perf record *)

let perf_record ~figures ~benchmarks : Obs.Json.t =
  let open Obs.Json in
  let figure r =
    Obj
      [
        ("id", Str r.fig_id);
        ("seconds", Num r.seconds);
        ("root_calls", Num (float_of_int r.root_calls));
        ("fixed_point_calls", Num (float_of_int r.fixed_point_calls));
        ("objective_evaluations", Num r.objective_evaluations);
      ]
  in
  let benchmark (name, time_ns, r2) =
    Obj
      [
        ("name", Str name);
        ("time_per_run_ns", Num time_ns);
        ("r_square", match r2 with Some r -> Num r | None -> Null);
      ]
  in
  Obj
    [
      ("schema", Str "bench.v1");
      ("generated_unix", Num (Obs.Clock.now ()));
      ( "regeneration_seconds",
        Num (List.fold_left (fun acc r -> acc +. r.seconds) 0. figures) );
      ("figures", Arr (List.map figure figures));
      ("benchmarks", Arr (List.map benchmark benchmarks));
    ]

let () =
  let json_path = ref None in
  Arg.parse
    [ ("--json", Arg.String (fun p -> json_path := Some p), "FILE  also write a bench.v1 perf record (BENCH_<id>.json)") ]
    (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
    "bench [--json FILE]";
  let failures, figures = regenerate () in
  let benchmarks = run_benchmarks () in
  (match !json_path with
  | Some path ->
    Obs.Export.write_json ~path (perf_record ~figures ~benchmarks);
    if path <> "-" then Printf.printf "\nperf record written to %s\n" path
  | None -> ());
  if failures > 0 then begin
    Printf.printf "\n%d experiment(s) had failing shape checks\n" failures;
    exit 1
  end
  else print_endline "\nAll figure shape checks passed."
