(* Benchmark harness.

   Part 1 regenerates every table/figure of the paper (the same rows the
   evaluation section reports) and prints the shape-check verdicts.
   Part 2 times the computational kernels behind each figure with
   Bechamel: one Test.make per figure, plus micro-benchmarks of the
   solvers.

   With `--json FILE` the harness additionally emits a machine-readable
   perf record (schema bench.v1): per-figure regeneration wall time and
   solver work, plus the bechamel time/run estimates — the BENCH_*.json
   trajectory the ROADMAP asks for. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 1: figure regeneration *)

type figure_record = {
  fig_id : string;
  seconds : float;
  root_calls : int;
  fixed_point_calls : int;
  objective_evaluations : float;
  deriv_ad : float;  (** exact seeded AD passes *)
  deriv_fd : float;  (** finite-difference stencil estimates *)
  continuation : Numerics.Continuation.stats;
  shared : Experiments.Eq_sweep.shared_stats option;
      (** the memoized fig7-11 sweep's cost, attributed to every
          consumer (their own counters only charge whichever ran
          first) *)
}

let regenerate experiments =
  print_endline "==================================================================";
  print_endline " Figure regeneration: Ma, 'Subsidization Competition' (CoNEXT'14)";
  print_endline "==================================================================";
  let failures = ref 0 in
  let records = ref [] in
  List.iter
    (fun (e : Experiments.Common.t) ->
      let t0 = Obs.Clock.now () in
      (* Common.run resets solver telemetry, so the per-figure solver
         counts below describe this figure alone *)
      let outcome = Experiments.Common.run e in
      let seconds = Obs.Clock.elapsed ~since:t0 in
      Printf.printf "\n%s\n" (String.make 66 '-');
      Experiments.Common.print ~plots:false outcome;
      Printf.printf "[%s regenerated in %.2fs]\n" e.Experiments.Common.id seconds;
      Printf.printf "[derivatives: %.0f AD passes, %.0f FD stencils | %s]\n"
        (Numerics.Ad.stats ()).Numerics.Ad.passes
        (Numerics.Diff.stats ()).Numerics.Diff.estimates
        (Numerics.Continuation.stats_summary ());
      let stats = Numerics.Robust.stats () in
      let id = e.Experiments.Common.id in
      records :=
        {
          fig_id = id;
          seconds;
          root_calls = stats.Numerics.Robust.root_calls;
          fixed_point_calls = stats.Numerics.Robust.fixed_point_calls;
          objective_evaluations = Obs.Metrics.sum_histograms "solver.evaluations";
          deriv_ad = (Numerics.Ad.stats ()).Numerics.Ad.passes;
          deriv_fd = (Numerics.Diff.stats ()).Numerics.Diff.estimates;
          continuation = Numerics.Continuation.stats ();
          shared =
            (if List.mem id Experiments.Eq_sweep.consumers then
               Experiments.Eq_sweep.shared_stats ()
             else None);
        }
        :: !records;
      if
        not
          (List.for_all
             (fun c -> c.Subsidization.Theorems.passed)
             outcome.Experiments.Common.shape_checks)
      then incr failures)
    experiments;
  (!failures, List.rev !records)

(* ------------------------------------------------------------------ *)
(* Part 2: bechamel timings *)

let fig45_sys = Subsidization.Scenario.fig45_system ()
let fig7_11_sys = Subsidization.Scenario.fig7_11_system ()
let bench_prices = Subsidization.Scenario.price_grid ~points:9 ()

let bench_fig4 () =
  let prices = bench_prices in
  Subsidization.One_sided.revenue_curve fig45_sys ~prices

let bench_fig5 () =
  let prices = bench_prices in
  Array.map (fun p -> (Subsidization.One_sided.state fig45_sys ~price:p).Subsidization.System.throughputs) prices

let bench_fig7_row cap () =
  Subsidization.Policy.price_sweep fig7_11_sys ~cap ~prices:bench_prices

let equilibrium_game = Subsidization.Subsidy_game.make fig7_11_sys ~price:0.8 ~cap:1.0

let nash_equilibrium = Subsidization.Nash.solve equilibrium_game

let bench_verify () = Subsidization.Theorems.run_paper_suite ()

let bench_capacity () =
  Subsidization.Capacity.evaluate fig7_11_sys
    ~pricing:(Subsidization.Capacity.Fixed_price 0.8) ~cap:1.0 ~unit_cost:0.15
    ~capacity:2.

let tests =
  Test.make_grouped ~name:"subsidization"
    [
      (* one per figure *)
      Test.make ~name:"fig4:revenue-curve" (Staged.stage bench_fig4);
      Test.make ~name:"fig5:throughput-curves" (Staged.stage bench_fig5);
      Test.make ~name:"fig7:sweep-q0" (Staged.stage (bench_fig7_row 0.));
      Test.make ~name:"fig8-11:sweep-q1" (Staged.stage (bench_fig7_row 1.0));
      Test.make ~name:"fig8-11:sweep-q2" (Staged.stage (bench_fig7_row 2.0));
      Test.make ~name:"verify:theorem-suite" (Staged.stage bench_verify);
      Test.make ~name:"capacity:market-eval" (Staged.stage bench_capacity);
      (* solver kernels *)
      Test.make ~name:"kernel:nash-solve"
        (Staged.stage (fun () -> Subsidization.Nash.solve equilibrium_game));
      Test.make ~name:"kernel:sensitivity-ds-dq"
        (Staged.stage (fun () ->
             Subsidization.Sensitivity.ds_dq equilibrium_game
               ~subsidies:nash_equilibrium.Subsidization.Nash.subsidies));
      Test.make ~name:"kernel:marginal-revenue-formula"
        (Staged.stage (fun () ->
             Subsidization.Revenue.marginal_formula equilibrium_game
               ~subsidies:nash_equilibrium.Subsidization.Nash.subsidies));
      (* solver ablation: iterated best response vs the extragradient VI
         iteration on the same game *)
      Test.make ~name:"ablation:nash-best-response"
        (Staged.stage (fun () -> Subsidization.Nash.solve equilibrium_game));
      Test.make ~name:"ablation:nash-extragradient"
        (Staged.stage (fun () ->
             Subsidization.Nash.solve_vi ~tol:1e-8 equilibrium_game));
      Test.make ~name:"dynamics:gradient-flow-100steps"
        (Staged.stage (fun () ->
             Subsidization.Dynamics.gradient_flow ~horizon:25. ~dt:0.25
               equilibrium_game ~x0:(Numerics.Vec.zeros 8)));
      Test.make ~name:"longrun:10-period-path"
        (Staged.stage (fun () ->
             Subsidization.Longrun.simulate
               ~params:
                 { Subsidization.Longrun.default_params with Subsidization.Longrun.periods = 10 }
               fig7_11_sys ~price:0.8 ~cap:1.0));
      Test.make ~name:"duopoly:market-eval-q1"
        (Staged.stage
           (let duopoly =
              Subsidization.Duopoly.make
                ~cps:(Subsidization.Scenario.fig7_11_cps ())
                ~capacity_a:0.5 ~capacity_b:0.5 ~cap:1.0 ()
            in
            fun () -> Subsidization.Duopoly.market_at duopoly ~prices:(0.8, 0.8)));
    ]

(* sub-microsecond kernels get their own bechamel run: at the shared
   0.5 s quota kernel:utilization-equilibrium regressed with r^2 = 0.49,
   so this group trades wall clock for a larger, better-conditioned
   sample *)
let fast_tests =
  Test.make_grouped ~name:"subsidization"
    [
      Test.make ~name:"kernel:utilization-equilibrium"
        (Staged.stage (fun () ->
             Subsidization.System.solve fig45_sys
               ~charges:(Numerics.Vec.make 9 0.5)));
    ]

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ~stabilize:true ()
  in
  let fast_cfg =
    Benchmark.cfg ~limit:3000 ~quota:(Time.second 2.0) ~kde:None ~stabilize:true ()
  in
  let results = Analyze.all ols Instance.monotonic_clock (Benchmark.all cfg instances tests) in
  let fast_results =
    Analyze.all ols Instance.monotonic_clock (Benchmark.all fast_cfg instances fast_tests)
  in
  let table = Report.Table.make ~columns:[ "benchmark"; "time/run"; "r^2" ] in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) fast_results rows in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let records =
    List.map
      (fun (name, ols) ->
        let time_ns =
          match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> Float.nan
        in
        let r2 = Analyze.OLS.r_square ols in
        let pretty =
          if Float.is_nan time_ns then "n/a"
          else if time_ns > 1e9 then Printf.sprintf "%.2f s" (time_ns /. 1e9)
          else if time_ns > 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
          else if time_ns > 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
          else Printf.sprintf "%.0f ns" time_ns
        in
        Report.Table.add_row table
          [ name; pretty; (match r2 with Some r -> Printf.sprintf "%.4f" r | None -> "-") ];
        (name, time_ns, r2))
      rows
  in
  print_newline ();
  print_endline "==================================================================";
  print_endline " Bechamel timings (monotonic clock, OLS on run count)";
  print_endline "==================================================================";
  print_endline (Report.Table.to_string table);
  records

(* ------------------------------------------------------------------ *)
(* parallel scaling: the two heaviest grid experiments, rerun at
   --jobs 1 and at the configured domain count; the determinism
   contract makes the outputs bit-identical, so only the wall clock
   may differ *)

let jobs_compare () =
  let configured = Parallel.Runtime.jobs () in
  let levels = if configured = 1 then [ 1 ] else [ 1; configured ] in
  let time_figure id =
    let e = Experiments.Registry.find_exn id in
    let t0 = Obs.Clock.now () in
    ignore (Experiments.Common.run e);
    Obs.Clock.elapsed ~since:t0
  in
  let rows =
    List.map
      (fun n ->
        Parallel.Runtime.set_jobs n;
        (n, time_figure "capacity", time_figure "duopoly"))
      levels
  in
  Parallel.Runtime.set_jobs configured;
  print_newline ();
  print_endline "==================================================================";
  print_endline " Parallel scaling (capacity + duopoly regeneration)";
  print_endline "==================================================================";
  let table = Report.Table.make ~columns:[ "jobs"; "capacity"; "duopoly" ] in
  List.iter
    (fun (n, cap_s, duo_s) ->
      Report.Table.add_row table
        [
          string_of_int n;
          Printf.sprintf "%.2f s" cap_s;
          Printf.sprintf "%.2f s" duo_s;
        ])
    rows;
  print_endline (Report.Table.to_string table);
  rows

(* ------------------------------------------------------------------ *)
(* machine-readable perf record *)

let parallel_json ~stats ~compare : Obs.Json.t =
  let open Obs.Json in
  let compare_row (n, cap_s, duo_s) =
    Obj
      [
        ("jobs", Num (float_of_int n));
        ("capacity_seconds", Num cap_s);
        ("duopoly_seconds", Num duo_s);
      ]
  in
  let stat_fields =
    match stats with
    | None -> [ ("domains", Num (float_of_int (Parallel.Runtime.jobs ()))) ]
    | Some s ->
      [
        ("domains", Num (float_of_int s.Parallel.Pool.domains));
        ("batches", Num (float_of_int s.Parallel.Pool.batches));
        ( "tasks_per_domain",
          Arr
            (Array.to_list
               (Array.map (fun n -> Num (float_of_int n)) s.Parallel.Pool.tasks_run)) );
      ]
  in
  Obj (stat_fields @ [ ("jobs_compare", Arr (List.map compare_row compare)) ])

let perf_record ~figures ~benchmarks ~parallel : Obs.Json.t =
  let open Obs.Json in
  let figure r =
    let shared_fields =
      match r.shared with
      | None -> []
      | Some (s : Experiments.Eq_sweep.shared_stats) ->
        [
          ("shared_with", Str "eq_sweep");
          ("shared_root_calls", Num (float_of_int s.Experiments.Eq_sweep.root_calls));
          ( "shared_objective_evaluations",
            Num s.Experiments.Eq_sweep.objective_evaluations );
        ]
    in
    Obj
      ([
         ("id", Str r.fig_id);
         ("seconds", Num r.seconds);
         ("root_calls", Num (float_of_int r.root_calls));
         ("fixed_point_calls", Num (float_of_int r.fixed_point_calls));
         ("objective_evaluations", Num r.objective_evaluations);
         ("deriv_ad", Num r.deriv_ad);
         ("deriv_fd", Num r.deriv_fd);
         ("continuation_steps", Num r.continuation.Numerics.Continuation.steps);
         ( "predictor_accepts",
           Num r.continuation.Numerics.Continuation.predictor_accepts );
         ( "corrector_iterations",
           Num r.continuation.Numerics.Continuation.corrector_iterations );
         ("fallbacks", Num r.continuation.Numerics.Continuation.fallbacks);
       ]
      @ shared_fields)
  in
  let benchmark (name, time_ns, r2) =
    Obj
      [
        ("name", Str name);
        ("time_per_run_ns", Num time_ns);
        ("r_square", match r2 with Some r -> Num r | None -> Null);
      ]
  in
  Obj
    [
      ("schema", Str "bench.v1");
      ("generated_unix", Num (Obs.Clock.now ()));
      ( "regeneration_seconds",
        Num (List.fold_left (fun acc r -> acc +. r.seconds) 0. figures) );
      ("figures", Arr (List.map figure figures));
      ("parallel", parallel);
      ("benchmarks", Arr (List.map benchmark benchmarks));
    ]

(* ------------------------------------------------------------------ *)
(* regression gate: bench.v1 vs bench.v1 via Obs.Bench_diff *)

let tolerance = ref Obs.Bench_diff.default_tolerance

let load_record path =
  match Obs.Bench_diff.load_file ~path with
  | Ok json -> json
  | Error msg ->
    Printf.eprintf "bench: %s\n" msg;
    exit 2

(* slowdown injection scales only the in-memory comparison copy — the
   record written by --json stays honest *)
let apply_injections by json =
  if by = [] then json else Obs.Bench_diff.scale_seconds json ~by

let run_diff ~baseline_path ~baseline ~current =
  match Obs.Bench_diff.diff ~tolerance:!tolerance ~baseline ~current () with
  | Error msg ->
    Printf.eprintf "bench: diff failed: %s\n" msg;
    exit 2
  | Ok report ->
    print_newline ();
    print_endline "==================================================================";
    Printf.printf " Perf comparison vs %s\n" baseline_path;
    print_endline "==================================================================";
    print_endline (Report.Table.to_string (Obs.Bench_diff.table report));
    print_endline (Obs.Bench_diff.summary report);
    if Obs.Bench_diff.ok report then 0 else 1

let () =
  let json_path = ref None in
  let compare_path = ref None in
  let diff_request = ref None in
  let diff_old = ref "" in
  let figure_ids = ref None in
  let no_bechamel = ref false in
  let no_jobs_compare = ref false in
  let injections = ref [] in
  let set_injection spec =
    let bad () =
      raise (Arg.Bad (Printf.sprintf "--inject-slowdown expects ID=FACTOR, got %S" spec))
    in
    match String.index_opt spec '=' with
    | None -> bad ()
    | Some i -> (
      let id = String.sub spec 0 i in
      let f = String.sub spec (i + 1) (String.length spec - i - 1) in
      match float_of_string_opt f with
      | Some factor when id <> "" && Float.is_finite factor && factor > 0. ->
        injections := !injections @ [ (id, factor) ]
      | _ -> bad ())
  in
  Arg.parse
    [
      ( "--json",
        Arg.String (fun p -> json_path := Some p),
        "FILE  also write a bench.v1 perf record (BENCH_<id>.json)" );
      ( "--jobs",
        Arg.Int Parallel.Runtime.set_jobs,
        "N  domains for grid-parallel evaluation (default: SUBSIDIZATION_JOBS \
         or the recommended domain count)" );
      ( "--compare",
        Arg.String (fun p -> compare_path := Some p),
        "OLD.json  after running, diff this run's record against a baseline \
         bench.v1 record; exit 1 on regression" );
      ( "--diff",
        Arg.Tuple
          [
            Arg.Set_string diff_old;
            Arg.String (fun p -> diff_request := Some (!diff_old, p));
          ],
        "OLD NEW  compare two existing bench.v1 records and exit — runs no \
         benchmarks" );
      ( "--figures",
        Arg.String
          (fun s ->
            figure_ids :=
              Some (List.filter (fun x -> x <> "") (String.split_on_char ',' s))),
        "a,b,c  regenerate only these figure ids (skips the jobs comparison)" );
      ("--no-bechamel", Arg.Set no_bechamel, "  skip the bechamel kernel timings");
      ( "--no-jobs-compare",
        Arg.Set no_jobs_compare,
        "  skip the parallel scaling comparison" );
      ( "--inject-slowdown",
        Arg.String set_injection,
        "ID=FACTOR  scale a figure's seconds in the comparison copy only — a \
         self-test hook for the regression gate, never written to --json" );
      ( "--tol-seconds",
        Arg.Float
          (fun x -> tolerance := { !tolerance with Obs.Bench_diff.seconds_rel = x }),
        "R  relative tolerance on figure seconds (default 0.5)" );
      ( "--tol-counts",
        Arg.Float
          (fun x -> tolerance := { !tolerance with Obs.Bench_diff.counts_rel = x }),
        "R  relative tolerance on solver-work counts (default 0.02)" );
    ]
    (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
    "bench [--json FILE] [--jobs N] [--figures a,b] [--compare OLD.json] \
     [--diff OLD NEW] [--no-bechamel] [--no-jobs-compare]";
  (* pure diff mode: compare two records on disk, run nothing *)
  (match !diff_request with
  | Some (old_path, new_path) ->
    let baseline = load_record old_path in
    let current = apply_injections !injections (load_record new_path) in
    exit (run_diff ~baseline_path:old_path ~baseline ~current)
  | None -> ());
  let experiments =
    match !figure_ids with
    | None -> Experiments.Registry.all
    | Some ids ->
      let known =
        List.map (fun (e : Experiments.Common.t) -> e.Experiments.Common.id)
          Experiments.Registry.all
      in
      List.iter
        (fun id ->
          if not (List.mem id known) then begin
            Printf.eprintf "bench: unknown figure id %S (known: %s)\n" id
              (String.concat ", " known);
            exit 2
          end)
        ids;
      List.filter
        (fun (e : Experiments.Common.t) -> List.mem e.Experiments.Common.id ids)
        Experiments.Registry.all
  in
  let failures, figures = regenerate experiments in
  (* capture the pool counters of the main regeneration pass before the
     scaling comparison recreates the pool *)
  let pool_stats = Parallel.Runtime.stats () in
  let jc_rows =
    if !no_jobs_compare then []
    else if !figure_ids <> None then begin
      print_endline "\n[jobs-compare skipped: --figures selects a subset]";
      []
    end
    else jobs_compare ()
  in
  (* part 2 times serial kernels: shut the pool down first, because
     even idle worker domains take part in every stop-the-world minor
     collection and would distort sub-microsecond loops *)
  Parallel.Runtime.shutdown ();
  let benchmarks = if !no_bechamel then [] else run_benchmarks () in
  let record =
    perf_record ~figures ~benchmarks
      ~parallel:(parallel_json ~stats:pool_stats ~compare:jc_rows)
  in
  (match !json_path with
  | Some path ->
    Obs.Export.write_json ~path record;
    if path <> "-" then Printf.printf "\nperf record written to %s\n" path
  | None -> ());
  let diff_status =
    match !compare_path with
    | None -> 0
    | Some path ->
      run_diff ~baseline_path:path ~baseline:(load_record path)
        ~current:(apply_injections !injections record)
  in
  if failures > 0 then begin
    Printf.printf "\n%d experiment(s) had failing shape checks\n" failures;
    exit 1
  end
  else begin
    print_endline "\nAll figure shape checks passed.";
    if diff_status <> 0 then exit diff_status
  end
